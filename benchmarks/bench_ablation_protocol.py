"""Protocol design-choice ablations (DESIGN.md §5).

* Out-of-order reassembly — the prototype omits it and accepts the
  recovery penalty under loss ("performance could suffer if subsequent
  IP fragments are lost", §4.1).  We quantify that penalty.
* Posted-receive credit — §5.1: "the more receive buffer space posted,
  the larger the TCP receive window the sender can utilize".
* Delayed ACKs — ACK-per-segment doubles interface ACK processing.
"""

import random

from conftest import save_report

from repro.apps.ttcp import qpip_ttcp
from repro.bench.configs import build_qpip_pair
from repro.bench.report import render_table
from repro.core import default_qpip_tcp_config
from repro.sim import Simulator
from repro.units import MB

import dataclasses


def _lossy_transfer(reassembly: bool, loss_rate: float = 0.02,
                    total=2 * MB, use_sack: bool = False) -> float:
    sim = Simulator()
    cfg = dataclasses.replace(default_qpip_tcp_config(16384),
                              reassembly=reassembly, use_sack=use_sack)
    a, b, fabric = build_qpip_pair(sim, tcp_config=cfg)
    rng = random.Random(7)
    link = fabric.host_link("h0")
    link.set_loss(a.nic.attachment,
                  lambda pkt: pkt.payload.length > 0 and rng.random() < loss_rate)
    r = qpip_ttcp(sim, a, b, total_bytes=total)
    return r.mb_per_sec


def _credit_transfer(recv_buffers: int, total=4 * MB) -> float:
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    r = qpip_ttcp(sim, a, b, total_bytes=total, recv_buffers=recv_buffers,
                  queue_depth=min(8, recv_buffers))
    return r.mb_per_sec


def _delack_transfer(delack_segments: int, total=4 * MB) -> tuple:
    sim = Simulator()
    cfg = dataclasses.replace(default_qpip_tcp_config(16384),
                              delack_segments=delack_segments)
    a, b, _f = build_qpip_pair(sim, tcp_config=cfg)
    r = qpip_ttcp(sim, a, b, total_bytes=total)
    acks = sum(c.stats.acks_out
               for c in b.firmware.stack.tcp.connections.values())
    return r.mb_per_sec, acks


def _run():
    with_r = _lossy_transfer(reassembly=True)
    without_r = _lossy_transfer(reassembly=False)
    with_sack = _lossy_transfer(reassembly=True, use_sack=True)
    credit = {n: _credit_transfer(n) for n in (1, 4, 16)}
    ack_every = _delack_transfer(1)
    ack_second = _delack_transfer(2)
    return with_r, without_r, with_sack, credit, ack_every, ack_second


def test_protocol_ablations(benchmark):
    (with_r, without_r, with_sack, credit, ack_every,
     ack_second) = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ("reassembly on, 2% loss", f"{with_r:.1f} MB/s"),
        ("reassembly off, 2% loss", f"{without_r:.1f} MB/s"),
        ("reassembly + SACK, 2% loss", f"{with_sack:.1f} MB/s"),
        ("1 recv WR posted", f"{credit[1]:.1f} MB/s"),
        ("4 recv WRs posted", f"{credit[4]:.1f} MB/s"),
        ("16 recv WRs posted", f"{credit[16]:.1f} MB/s"),
        ("ACK every segment", f"{ack_every[0]:.1f} MB/s ({ack_every[1]} ACKs)"),
        ("ACK every 2nd segment", f"{ack_second[0]:.1f} MB/s ({ack_second[1]} ACKs)"),
    ]
    save_report("ablation_protocol",
                render_table("Protocol design-choice ablations",
                             ["configuration", "result"], rows))

    # The prototype's no-reassembly choice costs real throughput under loss.
    assert with_r > without_r * 1.5
    assert with_sack >= with_r * 0.9     # SACK at least holds its own
    # Posted receive credit is the window: more WRs, more throughput,
    # saturating once the pipe is covered (§5.1).
    assert credit[4] > credit[1] * 1.2
    assert credit[16] >= credit[4] * 0.95
    # ACK-per-segment roughly doubles ACK traffic for no bandwidth gain.
    assert ack_every[1] > ack_second[1] * 1.5
    assert ack_second[0] >= ack_every[0] * 0.95
