"""Table 1: host overhead for the transmit+receive of a 1-byte TCP message.

Host-based: loopback RTT/2 (the paper's methodology).  QPIP: direct
timing of PostSend + the completion Poll.  The headline claim: QPIP
needs ~a tenth of the host cycles.
"""

from conftest import save_report

from repro.bench import run_table1


def _run():
    return run_table1(iterations=100)


def test_table1_host_overhead(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("table1_overhead", result.render())

    # Within 20% of the paper's absolute numbers...
    assert abs(result.host_based_us - 29.9) / 29.9 < 0.20
    assert abs(result.qpip_us - 2.5) / 2.5 < 0.20
    # ...and the order-of-magnitude offload claim holds.
    assert result.host_based_us / result.qpip_us > 8
