"""The offload argument, directly: network throughput while the host
runs a compute job.

The paper's motivation (§1, §2.2): host-based stacks "incur
non-negligible overhead on the host processors that impact latency and
other computation".  Here a 60%-duty-cycle compute job shares the
receiving host with a ttcp transfer.  The host stack and the compute job
fight for the same CPU; QPIP's stack lives on the NIC, so the transfer
barely notices and the compute job keeps its cycles.
"""

from conftest import save_report

from repro.apps.ttcp import qpip_ttcp, socket_ttcp
from repro.bench.configs import build_gige_pair, build_qpip_pair
from repro.bench.report import render_table
from repro.sim import Simulator
from repro.units import MB

HOG_BUSY = 600.0     # µs of compute ...
HOG_IDLE = 400.0     # ... per 1 ms period = 60% duty cycle


def _with_hog(sim, node):
    ticks = []

    def hog():
        while True:
            yield node.host.cpu.submit(HOG_BUSY, category="app-compute")
            ticks.append(sim.now)
            yield sim.timeout(HOG_IDLE)

    sim.process(hog())
    return ticks


def _compute_share(ticks, r) -> float:
    done_in_window = sum(1 for t in ticks if r.t_start <= t <= r.t_end)
    return done_in_window * HOG_BUSY / max(1.0, r.elapsed_us)


def _gige(load: bool):
    sim = Simulator()
    a, b, _f = build_gige_pair(sim)
    ticks = _with_hog(sim, b) if load else []
    r = socket_ttcp(sim, a, b, total_bytes=4 * MB)
    return r.mb_per_sec, _compute_share(ticks, r)


def _qpip(load: bool):
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    ticks = _with_hog(sim, b) if load else []
    r = qpip_ttcp(sim, a, b, total_bytes=4 * MB)
    return r.mb_per_sec, _compute_share(ticks, r)


def _run():
    return (_gige(False), _gige(True), _qpip(False), _qpip(True))


def test_compute_load_ablation(benchmark):
    ((g_clean, _), (g_load, g_compute),
     (q_clean, _), (q_load, q_compute)) = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    rows = [
        ("IP/GigE, idle host", f"{g_clean:5.1f} MB/s", "-"),
        ("IP/GigE, 60% compute load", f"{g_load:5.1f} MB/s",
         f"compute got {g_compute * 100:.0f}%"),
        ("QPIP, idle host", f"{q_clean:5.1f} MB/s", "-"),
        ("QPIP, 60% compute load", f"{q_load:5.1f} MB/s",
         f"compute got {q_compute * 100:.0f}%"),
    ]
    save_report("ablation_compute_load",
                render_table("Throughput under receiver compute load",
                             ["configuration", "throughput", "compute share"],
                             rows))

    # The host stack loses a large fraction of its bandwidth to the
    # compute job (they share the CPU)...
    assert g_load < g_clean * 0.8
    # ...while QPIP keeps nearly all of it (stack runs on the NIC).
    assert q_load > q_clean * 0.95
    # And the compute job keeps nearly its full 60% share beside QPIP,
    # while beside the host stack it gets squeezed.
    assert q_compute > 0.55
    assert g_compute < 0.55
