"""The introduction's scalability claim: "the switch-based design permits
a large array of devices to be connected in a manner that provides
scalable throughput" (§1).

Disjoint QPIP pairs on one crossbar switch: aggregate bandwidth should
grow ~linearly with the pair count (no shared bottleneck until the
switch itself saturates).
"""

from conftest import save_report

from repro.bench import run_fabric_scaling


def _run():
    return run_fabric_scaling(pair_counts=(1, 2, 3, 4))


def test_fabric_scaling(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("fabric_scaling", result.render())

    rows = {n: agg for n, agg, _per in result.rows}
    base = rows[1]
    # Linear scaling within 10% at every point (cut-through crossbar).
    for n, agg in rows.items():
        assert agg > n * base * 0.9, (n, agg)
    # Per-pair throughput does not degrade.
    for n, _agg, per in result.rows:
        assert per > base * 0.9
