"""Message-size characterization: the latency/bandwidth curves every SAN
interface paper of the era drew, for QPIP.

Not a figure in this paper, but the standard companion analysis: one-way
latency vs size, streaming bandwidth vs size, and the half-power point
n_1/2 (the message size at which half the peak bandwidth is reached —
small n_1/2 is what the QP interface buys).
"""

from conftest import save_report

from repro.bench import run_msgsize_sweep


def _run():
    return run_msgsize_sweep()


def test_msgsize_sweep(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("msgsize_sweep", result.render())

    sizes = [r[0] for r in result.rows]
    lats = [r[1] for r in result.rows]
    bws = [r[2] for r in result.rows]
    # Latency grows monotonically with size (DMA + wire time)...
    assert lats == sorted(lats)
    # ...and spans the right range: ~55 µs one-way at 1 byte.
    assert 40 <= lats[0] <= 80
    # Bandwidth grows with message size and peaks near the Figure 4 value.
    assert bws.index(max(bws)) >= len(bws) - 2
    assert 65 <= max(bws) <= 95
    # Small messages are interface-occupancy-bound: tiny fraction of peak.
    assert bws[0] < max(bws) / 50
    # The half-power point sits in the few-KB range for the prototype.
    assert 1024 <= result.half_power_point() <= 16000
