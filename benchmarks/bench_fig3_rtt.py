"""Figure 3: application-to-application round-trip time.

Regenerates the three-system, two-protocol RTT comparison and checks the
figure's shape: QPIP has the lowest RTT on both protocols, UDP beats TCP
everywhere, and magnitudes sit in the paper's ~70–140 µs band.
"""

from conftest import save_report

from repro.bench import run_fig3


def _run():
    return run_fig3(iterations=100)


def test_fig3_rtt(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("fig3_rtt", result.render())

    systems = ("IP/GigE", "IP/Myrinet", "QPIP")
    # UDP < TCP within every system (TCP pays ACK/state processing).
    for s in systems:
        assert result.measured(s, "udp") < result.measured(s, "tcp")
    # QPIP is the lowest-latency system on both protocols (Figure 3).
    for proto in ("udp", "tcp"):
        qpip = result.measured("QPIP", proto)
        assert qpip < result.measured("IP/GigE", proto)
        assert qpip < result.measured("IP/Myrinet", proto)
    # Magnitudes: the paper's band is ~70-140 µs.
    for s in systems:
        for proto in ("udp", "tcp"):
            assert 40 <= result.measured(s, proto) <= 200
    # QPIP TCP with firmware checksum: 113 µs in the paper (±20%).
    assert abs(result.measured("QPIP", "tcp") - 113) / 113 < 0.20
