"""Cluster scaling: events/sec vs worker count on a sharded fabric.

The paper's §1 claim is about the *fabric* scaling; this benchmark is
about the *simulator* scaling — sharding a ≥32-host fat-tree across
worker processes under the conservative window protocol.  The curve is
only a speedup where parallel hardware exists, so the assertions are
conditioned on the CPUs actually available to this process; the
determinism gate (sharded ≡ 1-process, bit for bit) holds regardless
and is always enforced.
"""

from conftest import save_report

from repro.cluster.bench import (available_cpus, measure_scaling,
                                 merge_into_bench_report, render_scaling,
                                 scaling_spec)


def _run():
    spec = scaling_spec(hosts=32, flows=16, total_bytes=131072)
    return measure_scaling(spec, worker_counts=(1, 2, 4),
                           processes=True, check_determinism=True)


def test_cluster_scaling(benchmark):
    scaling = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("cluster_scaling", render_scaling(scaling))
    merge_into_bench_report(scaling, "BENCH_perf.json")

    workers = scaling["workers"]
    assert workers["1"]["events"] == workers["2"]["events"] \
        == workers["4"]["events"]
    assert scaling["determinism"]
    # Speedup needs hardware: only assert the ≥1.3x four-worker gain
    # when four cores are actually schedulable here.
    if available_cpus() >= 4:
        assert workers["4"]["speedup"] >= 1.3, workers
