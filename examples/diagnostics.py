#!/usr/bin/env python
"""Looking inside the SAN: wiretaps, connection reports, occupancy
breakdowns, and pcap export.

The prototype's value included its observability — "could be
instrumented to provide performance details" (§4.1).  This example runs
a short lossy transfer and then inspects it with every tool in
``repro.tools``.

Run:  python examples/diagnostics.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.ttcp import qpip_ttcp
from repro.bench import build_qpip_pair
from repro.sim import Simulator
from repro.tools import Wiretap, connection_report, fabric_report, nic_report
from repro.units import MB


def main():
    sim = Simulator()
    a, b, fabric = build_qpip_pair(sim)
    tap = Wiretap(sim)
    tap.attach_qpip_nic(a.nic)

    rng = random.Random(3)
    fabric.host_link("h0").set_loss(
        a.nic.attachment,
        lambda pkt: pkt.payload.length > 0 and rng.random() < 0.01)

    result = qpip_ttcp(sim, a, b, total_bytes=2 * MB)
    print(f"transfer: {result.mb_per_sec:.1f} MB/s over a 1%-lossy link\n")

    print("=== first packets on the wire (tcpdump-style) ===")
    print(tap.dump(limit=8))
    print(f"\ncaptured {len(tap)} packets; "
          f"{tap.retransmissions()} retransmissions observed on the wire\n")

    conn = next(iter(a.firmware.stack.tcp.connections.values()))
    print("=== sender connection state (netstat-style) ===")
    print(connection_report(conn))

    print("\n=== sender NIC occupancy (the paper's Tables 2/3, live) ===")
    print(nic_report(a.nic))

    print("\n=== fabric ===")
    print(fabric_report(fabric))

    path = "/tmp/qpip_capture.pcap"
    n = tap.write_pcap(path)
    print(f"\nwrote {n} packets to {path} (libpcap format, LINKTYPE_RAW)")


if __name__ == "__main__":
    main()
