#!/usr/bin/env python
"""Parallel computing on the SAN: ring allreduce over queue pairs.

The paper descends from Active Messages and U-Net — interfaces built for
parallel programs.  Here five simulated hosts on one Myrinet switch run
a ring allreduce (the collective at the heart of data-parallel training
today) over QPIP, and we watch how the time splits between host CPU,
NIC firmware, and the wire.

Run:  python examples/parallel_allreduce.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.collective import build_ring
from repro.bench import build_qpip_cluster
from repro.sim import Simulator

N_RANKS = 5
VECTOR = 512          # float64 elements (4 KiB payload)
ROUNDS = 10


def main():
    sim = Simulator()
    nodes, fabric = build_qpip_cluster(sim, N_RANKS)
    ring = build_ring(nodes)
    results = {}

    def rank_proc(member):
        yield from member.setup()
        for other in ring:
            yield other._ready
        yield from member.barrier()
        member.node.host.reset_cpu_stats()
        member.node.nic.reset_stats()
        out = None
        for _ in range(ROUNDS):
            vec = [float(member.rank + 1)] * VECTOR
            out = yield from member.allreduce(vec)
        results[member.rank] = out[0]

    procs = [sim.process(rank_proc(m)) for m in ring]
    sim.run(until=600_000_000)
    assert all(p.triggered and p.ok for p in procs), "ring did not finish"

    expected = float(sum(range(1, N_RANKS + 1)))
    assert all(v == expected for v in results.values())
    print(f"{N_RANKS} ranks x {ROUNDS} allreduce rounds of {VECTOR} float64 "
          f"-> every rank computed {expected}\n")
    per_op = ring[0].stats.wall_time_us / ROUNDS
    print(f"allreduce latency: {per_op:.1f} µs per operation "
          f"({N_RANKS - 1} ring steps)")
    print(f"\n{'rank':>4s} {'host CPU µs':>12s} {'NIC busy µs':>12s} "
          f"{'bytes sent':>11s}")
    for m in ring:
        print(f"{m.rank:4d} {m.node.host.cpu.busy_time:12.1f} "
              f"{m.node.nic.processor.busy_time:12.1f} "
              f"{m.stats.bytes_sent:11d}")
    print("\nThe hosts post WRs and sleep; the NICs run TCP.  That division "
          "is the paper.")


if __name__ == "__main__":
    main()
