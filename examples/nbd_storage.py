#!/usr/bin/env python
"""Network storage over QPIP vs sockets: the paper's NBD experiment
(§4.2.3, Figure 7) on a reduced 32 MB working set.

Run:  python examples/nbd_storage.py [MB]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.nbd import (DiskModel, NBD_PORT, NbdQpipClient,
                            NbdSocketClient, qpip_nbd_server,
                            socket_nbd_server)
from repro.bench import build_gige_pair, build_qpip_pair
from repro.sim import Simulator
from repro.units import MB


def run_system(name, total):
    sim = Simulator()
    if name == "QPIP":
        client, server, _f = build_qpip_pair(sim, mtu=9000)
        disk = DiskModel(sim)
        sim.process(qpip_nbd_server(sim, server, disk))
        nbd = NbdQpipClient(client, server.addr, NBD_PORT)
    else:
        client, server, _f = build_gige_pair(sim)
        disk = DiskModel(sim)
        sim.process(socket_nbd_server(sim, server, disk))
        nbd = NbdSocketClient(client, server.addr, NBD_PORT)
    results = {}

    def run():
        yield from nbd.connect()
        results["write"] = yield from nbd.run_phase("write", total)
        yield disk.sync()      # flush dirty pages, as the paper's 'sync'
        results["read"] = yield from nbd.run_phase("read", total)
        yield from nbd.disconnect()

    proc = sim.process(run())
    sim.run(until=3_600_000_000)
    assert proc.triggered and proc.ok
    return results


def main():
    total = int(sys.argv[1]) * MB if len(sys.argv) > 1 else 32 * MB
    print(f"sequential write + sync + sequential read of "
          f"{total // MB} MB through an NBD device\n")
    print(f"{'system':10s} {'op':6s} {'MB/s':>7s} {'MB/CPU·s':>9s} {'client CPU':>11s}")
    print("-" * 50)
    for system in ("IP/GigE", "QPIP"):
        results = run_system(system, total)
        for op in ("write", "read"):
            r = results[op]
            print(f"{system:10s} {op:6s} {r.mb_per_sec:7.1f} "
                  f"{r.cpu_effectiveness:9.0f} {r.cpu_utilization * 100:10.1f}%")
    print("\nThe QP interface moves the whole TCP/IP stack off the client "
          "CPU:\nsame disks, same wire protocol, several times the "
          "per-CPU-second efficiency.")


if __name__ == "__main__":
    main()
