#!/usr/bin/env python
"""The paper's evaluation in miniature: RTT and throughput for all three
systems, plus the QPIP MTU sweep (Figures 3 and 4).

Run:  python examples/throughput_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import qpip_tcp_rtt, qpip_ttcp, socket_tcp_rtt, socket_ttcp
from repro.bench import build_gige_pair, build_gm_pair, build_qpip_pair
from repro.sim import Simulator
from repro.units import MB


def main():
    print("system       TCP RTT      ttcp 10MB      tx CPU")
    print("-" * 55)
    for name, builder in (("IP/GigE", build_gige_pair),
                          ("IP/Myrinet", build_gm_pair)):
        sim = Simulator()
        a, b, _f = builder(sim)
        rtt = socket_tcp_rtt(sim, a, b, iterations=50).mean
        sim = Simulator()
        a, b, _f = builder(sim)
        thr = socket_ttcp(sim, a, b, total_bytes=10 * MB)
        print(f"{name:12s} {rtt:6.1f} µs   {thr.mb_per_sec:6.1f} MB/s"
              f"   {thr.tx_cpu_utilization * 100:5.1f}%")

    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    rtt = qpip_tcp_rtt(sim, a, b, iterations=50).mean
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    thr = qpip_ttcp(sim, a, b, total_bytes=10 * MB)
    print(f"{'QPIP':12s} {rtt:6.1f} µs   {thr.mb_per_sec:6.1f} MB/s"
          f"   {thr.tx_cpu_utilization * 100:5.1f}%")

    print("\nQPIP throughput vs MTU (the interface-occupancy crossover):")
    for mtu in (1500, 4000, 9000, 16384):
        sim = Simulator()
        a, b, _f = build_qpip_pair(sim, mtu=mtu)
        thr = qpip_ttcp(sim, a, b, total_bytes=10 * MB)
        bar = "#" * int(thr.mb_per_sec / 2)
        print(f"  MTU {mtu:6d}: {thr.mb_per_sec:6.1f} MB/s  {bar}")


if __name__ == "__main__":
    main()
