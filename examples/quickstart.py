#!/usr/bin/env python
"""Quickstart: two hosts with QPIP adapters on a Myrinet fabric.

Walks the whole verbs flow — create CQ/QP, register memory, post
receives, listen/connect (the TCP handshake runs inside the NIC),
exchange messages, reap completions — and prints the measured
round-trip time.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import build_qpip_pair
from repro.core import QPTransport, WROpcode
from repro.net.addresses import Endpoint
from repro.sim import Simulator

PORT = 7000
MESSAGES = 8


def server(sim, node, results):
    iface = node.iface

    # Control path: completion queue, queue pair, registered buffers.
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq)
    recv_bufs = []
    for _ in range(4):
        buf = yield from iface.register_memory(4096)
        yield from iface.post_recv(qp, [buf.sge()])   # window = posted WRs
        recv_bufs.append(buf)
    send_buf = yield from iface.register_memory(4096)

    # Passive open: tell the interface to monitor the port, then offer
    # this idle QP; the SYN handshake happens entirely in the NIC.
    listener = yield from iface.listen(PORT)
    yield from iface.accept(listener, qp)
    print(f"[server] QP{qp.qp_num} mated to {qp.remote!r} at t={sim.now:.1f}µs")

    ring = 0
    echoed = 0
    while echoed < MESSAGES:
        cqes = yield from iface.wait(cq)          # blocking wait (interrupt)
        for cqe in cqes:
            if cqe.opcode is not WROpcode.RECV:
                continue                          # our own send completions
            text = recv_bufs[ring].read(cqe.byte_len)
            results.setdefault("echoed", []).append(text)
            send_buf.write(text)                  # echo it back
            yield from iface.post_send(qp, [send_buf.sge(0, cqe.byte_len)])
            yield from iface.post_recv(qp, [recv_bufs[ring].sge()])
            ring = (ring + 1) % len(recv_bufs)
            echoed += 1


def client(sim, node, server_addr, results):
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq)
    recv_bufs = []
    for _ in range(4):
        buf = yield from iface.register_memory(4096)
        yield from iface.post_recv(qp, [buf.sge()])
        recv_bufs.append(buf)
    send_buf = yield from iface.register_memory(4096)

    yield sim.timeout(1000)                       # let the server listen
    yield from iface.connect(qp, Endpoint(server_addr, PORT))
    print(f"[client] connected at t={sim.now:.1f}µs "
          f"(handshake ran on the NIC)")

    rtts = []
    ring = 0
    for i in range(MESSAGES):
        send_buf.write(f"message-{i}".encode())
        t0 = sim.now
        yield from iface.post_send(qp, [send_buf.sge(0, 9)])
        got_echo = False
        while not got_echo:
            cqes = yield from iface.spin(cq)      # poll: spins in the cache
            for cqe in cqes:
                if cqe.opcode is WROpcode.RECV:
                    rtts.append(sim.now - t0)
                    yield from iface.post_recv(qp, [recv_bufs[ring].sge()])
                    ring = (ring + 1) % len(recv_bufs)
                    got_echo = True
    results["rtts"] = rtts


def main():
    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    results = {}
    sim.process(server(sim, b, results))
    cp = sim.process(client(sim, a, b.addr, results))
    sim.run(until=10_000_000)
    assert cp.triggered and cp.ok, "client did not finish"

    rtts = results["rtts"]
    print(f"\n{MESSAGES} echoed messages: {results['echoed'][:3]} ...")
    print(f"QP-to-QP echo RTT: mean {sum(rtts)/len(rtts):.1f} µs "
          f"(min {min(rtts):.1f}, max {max(rtts):.1f})")
    print(f"host CPU spent by client: {a.host.cpu.busy_time:.1f} µs total")
    print(f"NIC firmware occupancy (client): "
          f"{a.nic.processor.busy_time:.1f} µs")


if __name__ == "__main__":
    main()
