#!/usr/bin/env python
"""Congestion control in the SAN fabric: ECN + RED (paper §5.2).


"Inter-network protocols do not bar the use of intelligence in the SAN
fabric that can improve performance ... mechanisms could either be
end-to-end or could include network-based mechanisms such as RED or
ECN."  Two senders funnel into one Gigabit port; we compare a tail-drop
switch (loss + retransmission recovery) against RED+ECN (marks, zero
loss).

Run:  python examples/ecn_red.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fabric import RedParams
from repro.fabric.link import Link
from repro.fabric.switch import EthernetSwitch
from repro.hoststack import TcpSocket
from repro.hoststack.kernel import HostKernel
from repro.hw import DumbNic, Host
from repro.net.addresses import Endpoint, IPv4Address, MacAddress
from repro.net.packet import ZeroPayload
from repro.net.tcp import TcpConfig
from repro.sim import Simulator

NBYTES = 600_000


def build_rig(sim, red):
    sw = EthernetSwitch(sim, 3, latency=1.0, queue_capacity=48, red=red)
    hosts = []
    for i in range(3):
        host = Host(sim, f"h{i}")
        kernel = HostKernel(sim, host, isn_seed=i)
        nic = DumbNic(sim, host, mtu=1500, name="eth0",
                      mac=MacAddress.from_index(i))
        addr = IPv4Address.from_index(i + 1)
        kernel.add_nic(nic, addr)
        # The receiver (host 1) hangs off a slower edge link, so the
        # switch's output queue toward it genuinely congests.
        bw = 30.0 if i == 1 else 125.0
        Link(sim, nic.attachment, sw.port(i), bandwidth=bw, propagation=0.5)
        hosts.append((kernel, nic, addr))
    for i, (kernel, nic, _addr) in enumerate(hosts):
        for j, (_k2, nic2, addr2) in enumerate(hosts):
            if i != j:
                kernel.add_route(addr2, nic, next_mac=nic2.mac)
    return sw, hosts


def run(red, ecn):
    sim = Simulator()
    sw, hosts = build_rig(sim, red)
    cfg = TcpConfig(mss=1460, ecn=ecn, reassembly=True, use_sack=True)
    (k0, _n0, a0), (k1, _n1, a1), (k2, _n2, a2) = hosts
    t_done = {}

    def server(port):
        lsock = TcpSocket(k1, a1, config=cfg)
        lsock.listen(port)
        conn = yield from lsock.accept()
        got = 0
        while got < NBYTES:
            data = yield from conn.recv(1 << 20)
            got += data.length
        t_done[port] = sim.now

    def client(kernel, addr, port):
        sock = TcpSocket(kernel, addr, config=cfg)
        yield from sock.connect(Endpoint(a1, port))
        yield from sock.send(ZeroPayload(NBYTES))

    procs = [sim.process(server(5001)), sim.process(server(5002)),
             sim.process(client(k0, a0, 5001)),
             sim.process(client(k2, a2, 5002))]
    sim.run(until=300_000_000)
    assert all(p.triggered and p.ok for p in procs)
    elapsed = max(t_done.values())
    retx = sum(c.stats.retransmitted_segs
               for kernel, _n, _a in hosts
               for c in kernel.stack.tcp.connections.values())
    reductions = sum(c.cc.ecn_reductions
                     for kernel, _n, _a in hosts
                     for c in kernel.stack.tcp.connections.values())
    goodput = 2 * NBYTES / elapsed * 1e6 / (1 << 20)
    return goodput, retx, reductions, sw


def main():
    print(f"two flows x {NBYTES // 1000} kB into one GigE port\n")
    print(f"{'switch policy':26s} {'goodput':>9s} {'retx':>6s} "
          f"{'ECN cuts':>9s} {'marks':>6s} {'drops':>6s}")
    print("-" * 70)
    g, retx, _r, sw = run(red=None, ecn=False)
    print(f"{'tail-drop':26s} {g:7.1f}MB {retx:6d} {'-':>9s} "
          f"{'-':>6s} {sw.dropped_overflow:6d}")
    g, retx, red_cuts, sw = run(red=RedParams(), ecn=True)
    print(f"{'RED + ECN':26s} {g:7.1f}MB {retx:6d} {red_cuts:9d} "
          f"{sw.red_marked:6d} {sw.red_dropped + sw.dropped_overflow:6d}")
    print("\nWith RED+ECN the fabric signals congestion before the queue "
          "overflows:\nsenders back off via window reductions, nothing is "
          "lost, nothing is\nretransmitted — the transport machinery the "
          "paper wanted to import\ninto SANs, working inside one.")


if __name__ == "__main__":
    main()
