#!/usr/bin/env python
"""One-sided RDMA in anger: a key-value store over QPIP.

The QP model the paper adopts includes RDMA — "data can be directly
written to or read from a remote address space without involving the
target process" (§2.1).  The prototype stopped at send-receive; this
repository implements RDMA as the paper's future work (iWARP-style
framing), and this example shows why it matters: GETs served by the
server process cost server CPU per request; one-sided RDMA GETs cost
exactly none.

Run:  python examples/rdma_kvstore.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.kvstore import KvClient, KvServer
from repro.bench import build_qpip_pair
from repro.sim import Simulator

N_OPS = 200


def main():
    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    server = KvServer(b, slot_count=128, slot_size=256)
    sim.process(server.run())
    client = KvClient(a, b.addr)
    results = {}

    def workload():
        info = yield server.ready
        yield sim.timeout(500)
        yield from client.connect(info)
        # Load a few keys.
        for i in range(16):
            yield from client.put(f"user:{i}".encode(),
                                  f"profile-data-{i:04d}".encode() * 4)

        # Phase 1: two-sided GETs (through the server process).
        b.host.reset_cpu_stats()
        t0 = sim.now
        for i in range(N_OPS):
            value = yield from client.get(f"user:{i % 16}".encode())
            assert value is not None
        results["two_sided"] = ((sim.now - t0) / N_OPS,
                                b.host.cpu.busy_time / N_OPS)

        # Phase 2: one-sided RDMA GETs (server process never runs).
        b.host.reset_cpu_stats()
        t0 = sim.now
        for i in range(N_OPS):
            value = yield from client.get_rdma(f"user:{i % 16}".encode())
            assert value is not None
        results["one_sided"] = ((sim.now - t0) / N_OPS,
                                b.host.cpu.busy_time / N_OPS)

    proc = sim.process(workload())
    sim.run(until=600_000_000)
    assert proc.triggered and proc.ok, "workload did not finish"

    two_lat, two_cpu = results["two_sided"]
    one_lat, one_cpu = results["one_sided"]
    print(f"{N_OPS} GETs of ~80-byte values, per operation:\n")
    print(f"{'path':22s} {'latency':>10s} {'server CPU':>12s}")
    print("-" * 46)
    print(f"{'two-sided (RPC)':22s} {two_lat:8.1f}µs {two_cpu:10.2f}µs")
    print(f"{'one-sided (RDMA READ)':22s} {one_lat:8.1f}µs {one_cpu:10.2f}µs")
    print(f"\nserver stats: {server.stats}")
    print("\nThe one-sided path trades a round of protocol work on the "
          "client NIC\nfor zero server involvement — the property that "
          "made RDMA the\nstorage/KV interconnect of choice.")


if __name__ == "__main__":
    main()
