#!/usr/bin/env python
"""TCP loss recovery — inside the network interface.

QPIP's whole point is that a *real* transport runs on the NIC: inject
packet loss on the Myrinet link and watch the on-NIC TCP retransmit,
fast-retransmit, and shrink its congestion window, while the
application only ever sees clean completions.

Run:  python examples/loss_recovery.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import dataclasses

from repro.apps.ttcp import qpip_ttcp
from repro.bench import build_qpip_pair
from repro.core import default_qpip_tcp_config
from repro.sim import Simulator
from repro.units import MB


def run(loss_rate, reassembly):
    sim = Simulator()
    cfg = dataclasses.replace(default_qpip_tcp_config(16384),
                              reassembly=reassembly)
    a, b, fabric = build_qpip_pair(sim, tcp_config=cfg)
    rng = random.Random(11)
    fabric.host_link("h0").set_loss(
        a.nic.attachment,
        lambda pkt: pkt.payload.length > 0 and rng.random() < loss_rate)
    result = qpip_ttcp(sim, a, b, total_bytes=4 * MB)
    conn = next(iter(a.firmware.stack.tcp.connections.values()))
    return result, conn.stats, conn.cc


def main():
    print("4 MB QP-to-QP transfer with injected loss on the send link\n")
    header = (f"{'loss':>6s} {'reasm':>6s} {'MB/s':>7s} {'retx':>5s} "
              f"{'fast-rtx':>8s} {'RTOs':>5s} {'dupACKs':>8s}")
    print(header)
    print("-" * len(header))
    for loss in (0.0, 0.005, 0.02):
        for reassembly in (False, True):
            result, stats, cc = run(loss, reassembly)
            print(f"{loss * 100:5.1f}% {str(reassembly):>6s} "
                  f"{result.mb_per_sec:7.1f} {stats.retransmitted_segs:5d} "
                  f"{stats.fast_retransmits:8d} {stats.rto_timeouts:5d} "
                  f"{stats.dup_acks_in:8d}")
    print(
        "\nThe prototype ships without out-of-order reassembly (paper "
        "§4.1):\nevery hole costs a round of retransmissions.  The "
        "reassembly flag is\nthis library's 'future work' extension — "
        "same engine, one config bit.")


if __name__ == "__main__":
    main()
