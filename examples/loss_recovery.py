#!/usr/bin/env python
"""TCP loss recovery — inside the network interface.

QPIP's whole point is that a *real* transport runs on the NIC: inject
packet loss and corruption on the Myrinet link and watch the on-NIC TCP
retransmit, fast-retransmit, and shrink its congestion window, while
the application only ever sees clean completions.

Faults come from the declarative `repro.faults` plans (docs/faults.md);
corrupted packets die in the receiver's real ones-complement checksum
and are recovered exactly like losses.

Run:  python examples/loss_recovery.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import dataclasses

from repro.apps.ttcp import qpip_ttcp
from repro.bench import build_qpip_pair
from repro.core import default_qpip_tcp_config
from repro.faults import FaultPlan, install_on_link
from repro.sim import RngHub, Simulator
from repro.units import MB


def run(loss_rate, corrupt_rate, reassembly):
    sim = Simulator()
    cfg = dataclasses.replace(default_qpip_tcp_config(16384),
                              reassembly=reassembly)
    a, b, fabric = build_qpip_pair(sim, tcp_config=cfg)
    plan = FaultPlan()
    if loss_rate:
        plan.drop(loss_rate, match=lambda pkt: pkt.payload.length > 0)
    if corrupt_rate:
        plan.corrupt(corrupt_rate, match=lambda pkt: pkt.payload.length > 0)
    injector = install_on_link(fabric.host_link("h0"), a.nic.attachment,
                               plan, RngHub(1).stream("faults"))
    result = qpip_ttcp(sim, a, b, total_bytes=4 * MB)
    conn = next(iter(a.firmware.stack.tcp.connections.values()))
    checksum_drops = b.firmware.stack.checksum_errors
    return result, conn.stats, injector, checksum_drops


def main():
    print("4 MB QP-to-QP transfer with loss + corruption on the send link\n")
    header = (f"{'loss':>6s} {'corr':>6s} {'reasm':>6s} {'MB/s':>7s} "
              f"{'retx':>5s} {'fast-rtx':>8s} {'RTOs':>5s} {'csum-drop':>9s}")
    print(header)
    print("-" * len(header))
    for loss, corrupt in ((0.0, 0.0), (0.005, 0.0), (0.02, 0.0),
                          (0.0, 0.01), (0.01, 0.01)):
        for reassembly in (False, True):
            result, stats, inj, csum = run(loss, corrupt, reassembly)
            print(f"{loss * 100:5.1f}% {corrupt * 100:5.1f}% "
                  f"{str(reassembly):>6s} "
                  f"{result.mb_per_sec:7.1f} {stats.retransmitted_segs:5d} "
                  f"{stats.fast_retransmits:8d} {stats.rto_timeouts:5d} "
                  f"{csum:9d}")
            assert csum == inj.counts()["corruptions"], \
                "every corrupted packet must die in the checksum"
    print(
        "\nA flipped bit is just a loss with extra steps: the receiver's "
        "checksum\ncatches it (csum-drop == packets corrupted) and "
        "retransmission repairs it.\nThe prototype ships without "
        "out-of-order reassembly (paper §4.1): every\nhole costs a round "
        "of retransmissions.  The reassembly flag is this\nlibrary's "
        "'future work' extension — same engine, one config bit.")


if __name__ == "__main__":
    main()
