#!/usr/bin/env python
"""Bridging the SAN to conventional systems (paper §3).

QPIP "uses established protocol formats ... and does not add any
additional protocol formats", so a QP endpoint interoperates with a
plain socket peer.  This example runs a QPIP client against a socket
server on the same Myrinet fabric, then shows the optional reassembly
library restoring message boundaries from the socket's byte stream.

Run:  python examples/qp_socket_interop.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.configs import build_interop_pair
from repro.core import MessageReassembler, QPTransport, WROpcode, frame_message
from repro.hoststack import TcpSocket
from repro.net.addresses import Endpoint
from repro.net.packet import BytesPayload
from repro.sim import Simulator

PORT = 7777
MESSAGES = [b"the SAN speaks", b"plain TCP/IPv6", b"to the outside world"]


def socket_server(sim, node, results):
    """A completely ordinary socket application."""
    lsock = TcpSocket(node.kernel, node.addr)
    lsock.listen(PORT)
    conn = yield from lsock.accept()
    print(f"[socket] accepted a connection at t={sim.now:.0f}µs — it has "
          "no idea the peer is a QP")
    # Echo framed messages back as one unstructured byte stream.
    total = sum(len(frame_message(m)) for m in MESSAGES)
    data = yield from conn.recv_exact(total)
    results["server_saw_bytes"] = data.length
    yield from conn.send(data)          # byte-wise echo


def qp_client(sim, node, server_addr, results):
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq)
    bufs = []
    for _ in range(8):
        buf = yield from iface.register_memory(16 * 1024)
        yield from iface.post_recv(qp, [buf.sge()])
        bufs.append(buf)
    sbuf = yield from iface.register_memory(16 * 1024)
    yield sim.timeout(1000)
    yield from iface.connect(qp, Endpoint(server_addr, PORT))
    print(f"[qp]     connected at t={sim.now:.0f}µs using the standard "
          "SYN handshake, run in the NIC")

    # Send each message length-prefixed so the stream peer can echo it
    # and we can re-frame the reply.  Verbs rule: a buffer belongs to the
    # NIC until its WR completes, so each message gets its own region.
    offset = 0
    for m in MESSAGES:
        framed = frame_message(m)
        sbuf.write(framed, offset=offset)
        yield from iface.post_send(qp, [sbuf.sge(offset, len(framed))])
        offset += len(framed)

    reasm = MessageReassembler()
    ring = 0
    echoed = []
    while len(echoed) < len(MESSAGES):
        cqes = yield from iface.wait(cq)
        for cqe in cqes:
            if cqe.opcode is not WROpcode.RECV or not cqe.ok:
                continue
            # Each TCP segment from the socket peer consumed one WR;
            # the reassembler restores the original boundaries.
            echoed.extend(reasm.push(bufs[ring].read(cqe.byte_len)))
            yield from iface.post_recv(qp, [bufs[ring].sge()])
            ring = (ring + 1) % len(bufs)
    results["echoed"] = echoed


def main():
    sim = Simulator()
    qp_node, sock_node, _fabric = build_interop_pair(sim)
    results = {}
    sim.process(socket_server(sim, sock_node, results))
    cp = sim.process(qp_client(sim, qp_node, sock_node.addr, results))
    sim.run(until=30_000_000)
    assert cp.triggered and cp.ok

    print(f"\nsocket peer saw {results['server_saw_bytes']} raw bytes")
    print("QP side reassembled the echo into messages:")
    for m in results["echoed"]:
        print(f"  {m!r}")
    assert results["echoed"] == MESSAGES
    print("\nround trip QP -> socket -> QP: payloads intact, no gateway, "
          "no extra protocol layer.")


if __name__ == "__main__":
    main()
