"""Structural fidelity to the paper's Figures 1 & 2: the four FSMs run
their stages in the documented order, once per unit of work.

DESIGN.md promises these figures are "reproduced as the structure of
repro.core ... asserted by tests rather than benches" — these are those
tests.  We record the NIC processor's work-item sequence and check it
against the pipelines in Figure 2.
"""

import pytest

from repro.bench.configs import build_qpip_pair
from repro.core import QPTransport, WROpcode
from repro.net.addresses import Endpoint
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class StageRecorder:
    """Wraps a ProgrammableNic's stage() to capture the dispatch order."""

    def __init__(self, nic):
        self.log = []
        orig = nic.stage
        orig_multi = nic.stages
        orig_burst = nic.stages_burst

        def stage(name, duration):
            self.log.append(name)
            return orig(name, duration)

        def stages(pairs):
            self.log.extend(name for name, _d in pairs)
            return orig_multi(pairs)

        def stages_burst(pairs, boundary_fn, post_pairs):
            # Pre-span names are logged by the wrapped stages() inside
            # the original; the post span charges the core directly, so
            # log its names here.  The burst pass runs contiguously on
            # the serial core, so call-time logging preserves order.
            walk = orig_burst(pairs, boundary_fn, post_pairs)
            if walk is not None:
                self.log.extend(name for name, _d in post_pairs)
            return walk

        nic.stage = stage
        nic.stages = stages
        nic.stages_burst = stages_burst

    def first_window(self, start_stage, stages):
        """The slice of the log beginning at the first ``start_stage``."""
        try:
            i = self.log.index(start_stage)
        except ValueError:
            return []
        return self.log[i:i + stages]

    def subsequence(self, wanted):
        """True when ``wanted`` appears in order (not necessarily adjacent)."""
        it = iter(self.log)
        return all(any(x == w for x in it) for w in wanted)


def _connected_rig(sim, a, b, msg_bytes=1):
    """Connect QPs, then send one message and wait for its completion."""
    done = {}

    def server():
        iface = b.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq)
        buf = yield from iface.register_memory(4096)
        yield from iface.post_recv(qp, [buf.sge()])
        listener = yield from iface.listen(9000)
        yield from iface.accept(listener, qp)
        yield from iface.wait(cq)
        done["server"] = True

    def client(recorders):
        iface = a.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq)
        buf = yield from iface.register_memory(4096)
        yield sim.timeout(500)
        yield from iface.connect(qp, Endpoint(b.addr, 9000))
        # Let the handshake tail (window updates, final ACK processing)
        # fully drain, then start clean recorders.
        yield sim.timeout(2000)
        recorders["tx"] = StageRecorder(a.nic)
        recorders["rx"] = StageRecorder(b.nic)
        yield from iface.post_send(qp, [buf.sge(0, msg_bytes)])
        yield from iface.wait(cq)
        done["client"] = True

    recorders = {}
    procs = [sim.process(server()), sim.process(client(recorders))]
    sim.run(until=sim.now + 30_000_000)
    assert all(p.triggered and p.ok for p in procs)
    return recorders["tx"], recorders["rx"]


class TestFigure2Transmit:
    def test_data_send_pipeline_order(self, sim):
        """Figure 2 transmit FSM: doorbell -> schedule -> get WR -> get
        data -> build TCP hdr -> build IP hdr -> send -> update."""
        a, b, _f = build_qpip_pair(sim)
        tx, _rx = _connected_rig(sim, a, b)
        assert tx.subsequence([
            "doorbell", "schedule", "get_wr", "get_data",
            "build_tcp_hdr", "build_ip_hdr", "media_send", "tx_update"])
        # The whole data-send pass runs contiguously from the schedule.
        window = tx.first_window("schedule", 7)
        assert window == ["schedule", "get_wr", "get_data", "build_tcp_hdr",
                          "build_ip_hdr", "media_send", "tx_update"] or \
            window[:4] == ["schedule", "get_wr", "get_data", "build_tcp_hdr"]

    def test_ack_send_skips_wr_stages(self, sim):
        """Figure 2 / Table 2 ACK column: an ACK send has no Get WR or
        Get Data stage."""
        a, b, _f = build_qpip_pair(sim)
        _tx, rx = _connected_rig(sim, a, b)
        # The receiver NIC emitted the ACK: find its transmit pass.
        i = rx.log.index("build_tcp_hdr")
        before = rx.log[max(0, i - 3):i]
        assert "get_wr" not in before or "put_data" in before
        assert rx.subsequence(["schedule", "build_tcp_hdr", "build_ip_hdr",
                               "media_send", "tx_update"])


class TestFigure2Receive:
    def test_data_receive_pipeline_order(self, sim):
        """Figure 2 receive FSM: media rcv -> IP parse -> TCP parse ->
        get WR -> put data -> update WR/CQ."""
        a, b, _f = build_qpip_pair(sim)
        _tx, rx = _connected_rig(sim, a, b)
        assert rx.subsequence([
            "media_recv", "ip_parse", "tcp_parse_data",
            "get_wr", "put_data", "rx_update_data"])

    def test_ack_receive_updates_wr_and_qp_state(self, sim):
        """Table 3 ACK column: TCP parse (14 µs path) then the 9 µs
        WR/QP-state update, no data placement."""
        a, b, _f = build_qpip_pair(sim)
        tx, _rx = _connected_rig(sim, a, b)
        assert tx.subsequence(["media_recv", "ip_parse", "tcp_parse_ack",
                               "rx_update_ack"])
        i = tx.log.index("tcp_parse_ack")
        tail = tx.log[i:i + 3]
        assert "put_data" not in tail


class TestFigure1Doorbell:
    def test_doorbell_fsm_runs_before_transmission(self, sim):
        a, b, _f = build_qpip_pair(sim)
        tx, _rx = _connected_rig(sim, a, b)
        assert tx.log.index("doorbell") < tx.log.index("get_wr")

    def test_management_fsm_separate_from_data_path(self, sim):
        """Privileged commands run through their own FSM (mgmt stage),
        never through the transmit pipeline."""
        a, b, _f = build_qpip_pair(sim)
        rec = StageRecorder(a.nic)

        def proc():
            yield from a.iface.register_memory(4096)

        p = sim.process(proc())
        sim.run(until=sim.now + 1_000_000)
        assert p.ok
        assert "mgmt" in rec.log
        assert "get_wr" not in rec.log
