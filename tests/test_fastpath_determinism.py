"""Golden determinism: fast paths must never change simulated results.

Every optimization behind ``repro.fastpath`` (word-folding checksums,
cached wire bytes, eager work-queue grants, allocation-free timer wakes,
merged firmware stages) is a *host-side* shortcut.  These tests run the
paper's mini-workloads — a fig. 4-style bulk stream, a fig. 3-style
ping-pong, and an explicit verbs exchange — once with the fast paths on
and once with them off, then assert the two runs are indistinguishable
at every observable level:

* identical completion streams (wr_id, qp_num, opcode, status, byte_len
  and the simulated time of each CQE), and
* byte-for-byte identical wire traces at both NICs, timestamps included.

Wall clock is the only thing allowed to differ.
"""

import pytest

from repro import fastpath
from repro.bench.configs import build_qpip_pair
from repro.core import QPTransport
from repro.net.addresses import Endpoint
from repro.sim import Simulator
from repro.tools import Wiretap

# Odd sizes on purpose: they exercise the checksum odd-tail handling and
# non-word-aligned payload slicing in both modes.
MESSAGE_SIZES = (1, 37, 100, 1024, 2049, 4095)


def _wire_trace(tap):
    """(time, direction, raw bytes) for every captured packet."""
    out = []
    for rec in tap.records:
        pkt = rec.packet
        raw = b"".join(h.encode() for h in pkt.headers)
        raw += pkt.payload.to_bytes()
        out.append((rec.time, rec.direction, raw))
    assert tap.dropped_records == 0
    return out


def _run_verbs_exchange(enabled):
    """Explicit post_send/post_recv exchange recording every CQE."""
    with fastpath.forced(enabled):
        sim = Simulator()
        a, b, _fabric = build_qpip_pair(sim)
        tap_a, tap_b = Wiretap(sim), Wiretap(sim)
        tap_a.attach_qpip_nic(a.nic)
        tap_b.attach_qpip_nic(b.nic)
        completions = []

        def note(side, cqe):
            completions.append((side, cqe.wr_id, cqe.qp_num,
                                cqe.opcode.name, cqe.status.name,
                                cqe.byte_len, sim.now))

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_recv_wr=16)
            bufs = []
            for _ in range(4):
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            got, ring = 0, 0
            while got < len(MESSAGE_SIZES):
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    note("rx", cqe)
                    got += 1
                    yield from iface.post_recv(qp, [bufs[ring].sge()])
                    ring = (ring + 1) % len(bufs)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            buf.write(bytes(range(256)) * 16)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            for size in MESSAGE_SIZES:
                yield from iface.post_send(qp, [buf.sge(0, size)])
                for cqe in (yield from iface.wait(cq)):
                    note("tx", cqe)

        sp, cp = sim.process(server()), sim.process(client())
        sim.run(until=50_000_000)
        assert sp.triggered and sp.ok
        assert cp.triggered and cp.ok
        return {
            "completions": completions,
            "wire_a": _wire_trace(tap_a),
            "wire_b": _wire_trace(tap_b),
            "now": sim.now,
        }


def _run_ttcp(enabled):
    """Fig. 4-style bulk stream (small) with a tap at the sender's NIC."""
    from repro.apps.ttcp import qpip_ttcp
    with fastpath.forced(enabled):
        sim = Simulator()
        a, b, _fabric = build_qpip_pair(sim)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(a.nic)
        res = qpip_ttcp(sim, a, b, total_bytes=192 * 1024, chunk=8192)
        return {
            "result": (res.bytes_moved, res.elapsed_us, res.t_start,
                       res.t_end),
            "wire": _wire_trace(tap),
            "now": sim.now,
        }


def _run_collective(enabled, engine):
    """Ring allreduce (both engines) with a tap at rank 0's NIC."""
    from repro.bench.configs import build_qpip_cluster
    from repro.collectives import (CollectiveWorkSpec,
                                   collective_rank_driver)
    with fastpath.forced(enabled):
        sim = Simulator()
        nodes, _fabric = build_qpip_cluster(sim, 4)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(nodes[0].nic)
        spec = CollectiveWorkSpec(engine=engine, algo="allreduce",
                                  vector_len=96, seed=17)
        records = {rank: {} for rank in range(4)}
        procs = [sim.process(collective_rank_driver(
            sim, nodes[rank], rank, 4, spec, records[rank]))
            for rank in range(4)]
        sim.run(until=50_000_000)
        for proc in procs:
            assert proc.triggered and proc.ok
        return {
            "records": records,
            "wire": _wire_trace(tap),
            "now": sim.now,
        }


def _run_pingpong(enabled):
    """Fig. 3-style TCP-QP ping-pong with a tap at the client's NIC."""
    from repro.apps.pingpong import qpip_tcp_rtt
    with fastpath.forced(enabled):
        sim = Simulator()
        a, b, _fabric = build_qpip_pair(sim)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(a.nic)
        res = qpip_tcp_rtt(sim, a, b, iterations=12, msg_size=64)
        return {
            "rtts": list(res.rtts),
            "wire": _wire_trace(tap),
            "now": sim.now,
        }


class TestGoldenDeterminism:
    def test_verbs_exchange_identical(self):
        fast = _run_verbs_exchange(True)
        slow = _run_verbs_exchange(False)
        assert fast["completions"] == slow["completions"]
        assert fast["wire_a"] == slow["wire_a"]
        assert fast["wire_b"] == slow["wire_b"]
        assert fast["now"] == slow["now"]
        # Sanity: the workload actually moved every message.
        tx = [c for c in fast["completions"] if c[0] == "tx"]
        rx = [c for c in fast["completions"] if c[0] == "rx"]
        assert len(tx) == len(MESSAGE_SIZES)
        assert [c[5] for c in rx] == list(MESSAGE_SIZES)

    def test_ttcp_bulk_identical(self):
        fast = _run_ttcp(True)
        slow = _run_ttcp(False)
        assert fast["result"] == slow["result"]
        assert fast["wire"] == slow["wire"]
        assert fast["now"] == slow["now"]
        assert len(fast["wire"]) > 20     # a real trace, not a stub

    def test_pingpong_identical(self):
        fast = _run_pingpong(True)
        slow = _run_pingpong(False)
        assert fast["rtts"] == slow["rtts"]
        assert fast["wire"] == slow["wire"]
        assert fast["now"] == slow["now"]
        assert len(fast["rtts"]) == 12

    @pytest.mark.parametrize("engine", ["host", "nic"])
    def test_collective_identical(self, engine):
        fast = _run_collective(True, engine)
        slow = _run_collective(False, engine)
        assert fast["records"] == slow["records"]
        assert fast["wire"] == slow["wire"]
        assert fast["now"] == slow["now"]
        digests = {rec["result_digest"]
                   for rec in fast["records"].values()}
        assert len(digests) == 1          # every rank holds the same bits
        assert len(fast["wire"]) > 10
