"""Unit + property tests for TCP building blocks: sequence space, RTT
estimation, Reno congestion control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.tcp import (DUPACK_THRESHOLD, RenoCongestion, RttEstimator,
                           seq_add, seq_between, seq_ge, seq_gt, seq_le,
                           seq_lt, seq_max, seq_sub)

MOD = 1 << 32


class TestSeqSpace:
    def test_basic_ordering(self):
        assert seq_lt(1, 2)
        assert seq_gt(2, 1)
        assert seq_le(2, 2)
        assert seq_ge(2, 2)

    def test_wraparound_ordering(self):
        near_top = MOD - 10
        assert seq_lt(near_top, 5)          # 5 is "after" near_top
        assert seq_gt(5, near_top)
        assert seq_sub(5, near_top) == 15

    def test_seq_add_wraps(self):
        assert seq_add(MOD - 1, 1) == 0
        assert seq_add(MOD - 1, 2) == 1

    def test_between_across_wrap(self):
        low = MOD - 5
        high = 10
        assert seq_between(low, MOD - 1, high)
        assert seq_between(low, 0, high)
        assert not seq_between(low, 10, high)
        assert not seq_between(low, MOD - 6, high)

    def test_seq_max(self):
        assert seq_max(MOD - 1, 3) == 3   # 3 is later across the wrap
        assert seq_max(5, 3) == 5

    @settings(max_examples=200, deadline=None)
    @given(base=st.integers(0, MOD - 1), da=st.integers(0, 2**30),
           db=st.integers(0, 2**30))
    def test_translation_invariance(self, base, da, db):
        a = seq_add(base, da)
        b = seq_add(base, db)
        assert seq_lt(a, b) == (da < db)
        assert seq_sub(b, a) == db - da


class TestRttEstimator:
    def test_first_sample_initializes(self):
        r = RttEstimator(min_rto=1000)
        r.sample(500)
        assert r.srtt == 500
        assert r.rttvar == 250
        assert r.rto >= 1000  # floored

    def test_converges_to_constant_rtt(self):
        r = RttEstimator(min_rto=10)
        for _ in range(100):
            r.sample(200)
        assert r.srtt == pytest.approx(200, rel=0.01)
        assert r.rttvar == pytest.approx(0, abs=1.0)

    def test_rto_tracks_variance(self):
        r = RttEstimator(min_rto=10)
        for x in [100, 300, 100, 300, 100, 300]:
            r.sample(x)
        assert r.rto > r.srtt   # variance keeps RTO above the mean

    def test_backoff_doubles_and_resets(self):
        r = RttEstimator(min_rto=1000, initial_rto=1000)
        r.sample(900)
        base = r.rto
        r.on_timeout()
        assert r.rto == pytest.approx(2 * base)
        r.on_timeout()
        assert r.rto == pytest.approx(4 * base)
        r.sample(900)
        assert r.rto == pytest.approx(base, rel=0.2)

    def test_max_rto_cap(self):
        r = RttEstimator(min_rto=1000, max_rto=8000, initial_rto=1000)
        for _ in range(10):
            r.on_timeout()
        assert r.rto == 8000

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-1)

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(st.floats(1, 1e6), min_size=1, max_size=50))
    def test_rto_bounds_invariant(self, samples):
        r = RttEstimator(min_rto=5000, max_rto=1e7)
        for s in samples:
            r.sample(s)
            assert 5000 <= r.rto <= 1e7


class TestReno:
    def test_initial_window(self):
        cc = RenoCongestion(mss=1460)
        assert cc.cwnd == 2 * 1460
        assert cc.in_slow_start

    def test_slow_start_doubles_per_window(self):
        cc = RenoCongestion(mss=1000)
        # ACK a full window's worth: cwnd should roughly double.
        start = cc.cwnd
        for _ in range(start // 1000):
            cc.on_ack_of_new_data(1000, flight_size=start)
        assert cc.cwnd == 2 * start

    def test_congestion_avoidance_linear(self):
        cc = RenoCongestion(mss=1000)
        cc.ssthresh = 4000
        cc.cwnd = 4000
        before = cc.cwnd
        for _ in range(4):   # one window of ACKs
            cc.on_ack_of_new_data(1000, flight_size=4000)
        assert before < cc.cwnd <= before + 1000 + 4  # ~1 MSS per RTT

    def test_fast_retransmit_trigger(self):
        cc = RenoCongestion(mss=1000)
        cc.cwnd = 10_000
        cc.ssthresh = 5
        fired = [cc.on_duplicate_ack(flight_size=10_000)
                 for _ in range(DUPACK_THRESHOLD)]
        assert fired == [False, False, True]
        assert cc.in_recovery
        assert cc.ssthresh == 5000
        assert cc.cwnd == 5000 + 3 * 1000

    def test_recovery_inflation_and_deflation(self):
        cc = RenoCongestion(mss=1000)
        cc.cwnd = 10_000
        for _ in range(DUPACK_THRESHOLD):
            cc.on_duplicate_ack(flight_size=10_000)
        inflated = cc.cwnd
        cc.on_duplicate_ack(flight_size=10_000)
        assert cc.cwnd == inflated + 1000
        cc.exit_recovery()
        assert not cc.in_recovery
        assert cc.cwnd == cc.ssthresh

    def test_timeout_collapses_window(self):
        cc = RenoCongestion(mss=1000)
        cc.cwnd = 64_000
        cc.on_retransmission_timeout(flight_size=64_000)
        assert cc.cwnd == 1000
        assert cc.ssthresh == 32_000
        assert cc.timeouts == 1

    def test_ssthresh_floor(self):
        cc = RenoCongestion(mss=1000)
        cc.on_retransmission_timeout(flight_size=1000)
        assert cc.ssthresh == 2000

    def test_bad_mss_rejected(self):
        with pytest.raises(ValueError):
            RenoCongestion(mss=0)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.sampled_from(["ack", "dup", "rto"]), max_size=60))
    def test_cwnd_never_below_one_mss(self, ops):
        cc = RenoCongestion(mss=1000)
        for op in ops:
            if op == "ack":
                if cc.in_recovery:
                    cc.exit_recovery()
                else:
                    cc.on_ack_of_new_data(1000, flight_size=cc.cwnd)
            elif op == "dup":
                cc.on_duplicate_ack(flight_size=cc.cwnd)
            else:
                cc.on_retransmission_timeout(flight_size=cc.cwnd)
            assert cc.cwnd >= 1000
            assert cc.ssthresh >= 2000
