"""Golden baselines for the legacy observability stubs.

These tests pin the *exact* output formats of ``tools.wiretap`` and
``sim.trace`` as they existed before the ``repro.obs`` subsystem grew out
of them.  The obs migration claims to be behaviour-preserving for these
surfaces (old call sites keep working, old file formats stay readable),
and this file is the proof: if a refactor changes a pinned string or a
header byte, the claim is broken and the test says so.
"""

import struct

import pytest

from repro.net.addresses import IPv6Address
from repro.net.headers.ip import IPv6Header
from repro.net.headers.transport import ACK, PSH, SYN, TCPHeader, UDPHeader
from repro.net.packet import Packet, ZeroPayload
from repro.sim import Simulator
from repro.sim.trace import NullTracer, Tracer
from repro.tools import Wiretap, format_packet


@pytest.fixture
def sim():
    return Simulator()


class TestFormatPacketGolden:
    """Exact tcpdump-style lines, character for character."""

    def _ip6(self, s=1, d=2, proto=6):
        return IPv6Header(IPv6Address.from_index(s),
                          IPv6Address.from_index(d), proto)

    def test_syn_with_options(self):
        pkt = Packet([self._ip6(),
                      TCPHeader(1000, 2000, seq=5, ack=9, flags=SYN,
                                window=100, mss=1460)],
                     ZeroPayload(0))
        assert format_packet(pkt, now=12.5) == (
            "      12.5  fd00::1.1000 > fd00::2.2000: Flags [S], "
            "seq 5, ack 9, win 100 <mss 1460>, length 0")

    def test_data_segment_seq_range(self):
        pkt = Packet([self._ip6(),
                      TCPHeader(32768, 9000, seq=100, ack=7,
                                flags=PSH | ACK, window=2048)],
                     ZeroPayload(50))
        assert format_packet(pkt, now=1083.4) == (
            "    1083.4  fd00::1.32768 > fd00::2.9000: Flags [P.], "
            "seq 100:150, ack 7, win 2048, length 50")

    def test_udp(self):
        pkt = Packet([self._ip6(3, 4, proto=17), UDPHeader(7, 8, length=28)],
                     ZeroPayload(20))
        assert format_packet(pkt, now=0.0) == (
            "       0.0  fd00::3.7 > fd00::4.8: UDP, length 20")

    def test_non_ip(self):
        assert format_packet(Packet(payload=ZeroPayload(10)), now=3.0) == (
            "       3.0  <non-IP frame, 10B>")

    def test_ce_suffix(self):
        ip = self._ip6()
        ip.ecn = 0b11
        pkt = Packet([ip, TCPHeader(1, 2, window=64)], ZeroPayload(0))
        line = format_packet(pkt, now=1.0)
        assert line.endswith("length 0 [CE]")


class TestLegacyTracerGolden:
    """The (time, category, message) tuple contract of sim.trace.Tracer."""

    def test_record_shape_is_plain_tuple(self, sim):
        tr = Tracer(sim)
        sim.call_later(2.5, lambda: tr.log("tcp", "retx seq=100"))
        sim.run()
        assert list(tr.records) == [(2.5, "tcp", "retx seq=100")]
        rec = tr.records[0]
        assert type(rec) is tuple and len(rec) == 3

    def test_capacity_is_a_ring(self, sim):
        tr = Tracer(sim, capacity=3)
        for i in range(5):
            tr.log("c", f"m{i}")
        assert [r[2] for r in tr.records] == ["m2", "m3", "m4"]

    def test_enable_only_filters_at_log_time(self, sim):
        tr = Tracer(sim)
        tr.enable_only(["keep"])
        tr.log("keep", "a")
        tr.log("drop", "b")
        assert tr.count("keep") == 1
        assert tr.count("drop") == 0

    def test_find_matches_category_and_substring(self, sim):
        tr = Tracer(sim)
        tr.log("tcp", "fast retransmit seq=1")
        tr.log("tcp", "rto fired")
        tr.log("qp", "fast retransmit unrelated")
        assert len(tr.find("tcp", "retransmit")) == 1
        assert tr.count("tcp") == 2
        tr.clear()
        assert tr.count("tcp") == 0

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        nt.log("any", "thing")
        assert nt.find("any") == []
        assert nt.count("any") == 0
        nt.clear()


class TestLegacyPcapGolden:
    """Classic libpcap output: exact global header, exact record framing."""

    def _capture_one(self, sim):
        tap = Wiretap(sim)
        ip = IPv6Header(IPv6Address.from_index(1),
                        IPv6Address.from_index(2), 6)
        pkt = Packet([ip, TCPHeader(1000, 2000, seq=5, window=100)],
                     ZeroPayload(8))
        tap._record("tx", pkt)
        return tap, pkt

    def test_global_header_bytes(self, sim, tmp_path):
        tap, _pkt = self._capture_one(sim)
        path = tmp_path / "one.pcap"
        assert tap.write_pcap(str(path)) == 1
        raw = path.read_bytes()
        # Little-endian classic pcap, version 2.4, snaplen 65535, RAW IP.
        assert raw[:24] == struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                       65535, 101)

    def test_record_header_and_body(self, sim, tmp_path):
        from repro.net.wire import serialize
        tap, pkt = self._capture_one(sim)
        path = tmp_path / "one.pcap"
        tap.write_pcap(str(path))
        raw = path.read_bytes()
        body = serialize(pkt)
        sec, usec, incl, orig = struct.unpack_from("<IIII", raw, 24)
        assert (sec, usec) == (0, 0)            # captured at t=0
        assert incl == orig == len(body)
        assert raw[40:40 + incl] == body
        assert len(raw) == 40 + incl            # nothing after the packet


class TestLegacyHistogramGolden:
    """sim.stats.Histogram keeps its approximate (bucket-edge) percentile."""

    def test_percentile_returns_bucket_upper_edge(self):
        from repro.sim.stats import Histogram
        h = Histogram(0.0, 100.0, buckets=10)
        for x in (5, 15, 25, 35):
            h.add(x)
        # Approximate by design: answers snap to bucket edges.
        assert h.percentile(50) == 20.0
        assert h.percentile(100) == 40.0
        assert h.percentile(0) == 0.0
