"""QP ↔ socket interoperation (paper §3).

"Communication can occur between QPIP applications or QPIP and
traditional (socket) systems" — same wire formats, different interfaces.
These tests put a QPIP adapter and a conventional socket host on one
Myrinet fabric and run both directions.
"""

import pytest

from repro.bench.configs import build_interop_pair
from repro.core import (MessageReassembler, QPTransport, WROpcode,
                        frame_message)
from repro.hoststack import TcpSocket, UdpSocket
from repro.net.addresses import Endpoint
from repro.net.packet import BytesPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rig(sim):
    return build_interop_pair(sim)


def run_procs(sim, *gens, until=30_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


class TestQpToSocket:
    def test_qp_client_socket_server(self, sim, rig):
        qp_node, sock_node, _f = rig
        results = {}

        def socket_server():
            lsock = TcpSocket(sock_node.kernel, sock_node.addr)
            lsock.listen(7777)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(10)
            results["server_got"] = data.to_bytes()
            yield from conn.send(BytesPayload(b"from-socket"))

        def qp_client():
            iface = qp_node.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            bufs = []
            for _ in range(4):
                buf = yield from iface.register_memory(16 * 1024)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            sbuf = yield from iface.register_memory(4096)
            sbuf.write(b"qp->socket")
            yield sim.timeout(1000)
            yield from iface.connect(qp, Endpoint(sock_node.addr, 7777))
            yield from iface.post_send(qp, [sbuf.sge(0, 10)])
            # The socket's reply arrives as one or more messages (each
            # peer segment consumes a receive WR).
            got = b""
            while len(got) < 11:
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    if cqe.opcode is WROpcode.RECV and cqe.ok:
                        got += bufs[0].read(cqe.byte_len)
            results["client_got"] = got

        run_procs(sim, socket_server(), qp_client())
        assert results["server_got"] == b"qp->socket"
        assert results["client_got"] == b"from-socket"

    def test_socket_client_qp_server(self, sim, rig):
        qp_node, sock_node, _f = rig
        results = {}

        def qp_server():
            iface = qp_node.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            bufs = []
            for _ in range(4):
                buf = yield from iface.register_memory(16 * 1024)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            sbuf = yield from iface.register_memory(4096)
            sbuf.write(b"qp-reply")
            listener = yield from iface.listen(8888)
            yield from iface.accept(listener, qp)
            cqes = yield from iface.wait(cq)
            results["server_got"] = bufs[0].read(cqes[0].byte_len)
            yield from iface.post_send(qp, [sbuf.sge(0, 8)])

        def socket_client():
            sock = TcpSocket(sock_node.kernel, sock_node.addr)
            yield sim.timeout(2000)
            yield from sock.connect(Endpoint(qp_node.addr, 8888))
            yield from sock.send(BytesPayload(b"hello-qp"))
            data = yield from sock.recv_exact(8)
            results["client_got"] = data.to_bytes()

        run_procs(sim, qp_server(), socket_client())
        assert results["server_got"] == b"hello-qp"
        assert results["client_got"] == b"qp-reply"

    def test_streamed_messages_reassembled(self, sim, rig):
        """A socket peer has no message boundaries; the QP side uses the
        optional reassembly library (paper §3) to restore them."""
        qp_node, sock_node, _f = rig
        messages = [b"alpha", b"b" * 5000, b"gamma!", b""]
        results = {}

        def socket_sender():
            sock = TcpSocket(sock_node.kernel, sock_node.addr)
            yield sim.timeout(2000)
            yield from sock.connect(Endpoint(qp_node.addr, 8888))
            stream = b"".join(frame_message(m) for m in messages)
            yield from sock.send(BytesPayload(stream))

        def qp_receiver():
            iface = qp_node.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            bufs = []
            for _ in range(8):
                buf = yield from iface.register_memory(16 * 1024)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(8888)
            yield from iface.accept(listener, qp)
            reasm = MessageReassembler()
            ring = 0
            out = []
            while len(out) < len(messages):
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    if cqe.opcode is not WROpcode.RECV or not cqe.ok:
                        continue
                    out.extend(reasm.push(bufs[ring].read(cqe.byte_len)))
                    yield from iface.post_recv(qp, [bufs[ring].sge()])
                    ring = (ring + 1) % len(bufs)
            results["messages"] = out

        run_procs(sim, socket_sender(), qp_receiver())
        assert results["messages"] == messages

    def test_udp_qp_to_socket(self, sim, rig):
        qp_node, sock_node, _f = rig
        results = {}

        def socket_server():
            sock = UdpSocket(sock_node.kernel, sock_node.addr)
            sock.bind(9999)
            dg = yield from sock.recvfrom()
            results["got"] = dg.payload.to_bytes()
            yield from sock.sendto(dg.src, BytesPayload(b"pong"))

        def qp_client():
            iface = qp_node.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.UDP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            yield from iface.bind_udp(qp)
            sbuf = yield from iface.register_memory(4096)
            sbuf.write(b"ping")
            yield sim.timeout(2000)
            yield from iface.post_send(qp, [sbuf.sge(0, 4)],
                                       dest=Endpoint(sock_node.addr, 9999))
            got = None
            while got is None:
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    if cqe.opcode is WROpcode.RECV:
                        got = buf.read(cqe.byte_len)
            results["reply"] = got

        run_procs(sim, socket_server(), qp_client())
        assert results["got"] == b"ping"
        assert results["reply"] == b"pong"
