"""Tests for the RDMA key-value store application."""

import pytest

from repro.apps.kvstore import (KvClient, KvServer, SlotTable, _decode_req,
                                _encode_req, _hash_key)
from repro.bench.configs import build_qpip_pair
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestCodec:
    def test_request_roundtrip(self):
        raw = _encode_req(1, b"key", b"value!")
        op, key, value = _decode_req(raw)
        assert (op, key, value) == (1, b"key", b"value!")

    def test_empty_value(self):
        op, key, value = _decode_req(_encode_req(2, b"k"))
        assert (op, key, value) == (2, b"k", b"")

    def test_hash_stable_and_in_range(self):
        for key in (b"a", b"abc", b"x" * 100):
            h = _hash_key(key, 256)
            assert 0 <= h < 256
            assert h == _hash_key(key, 256)


def setup_kv(sim, slot_count=64, slot_size=128):
    a, b, _f = build_qpip_pair(sim)
    server = KvServer(b, slot_count=slot_count, slot_size=slot_size)
    sim.process(server.run())
    client = KvClient(a, b.addr)
    return a, b, server, client


def run_client(sim, server, client, body, until=60_000_000):
    def proc():
        info = yield server.ready
        yield sim.timeout(500)
        yield from client.connect(info)
        result = yield from body()
        return result

    p = sim.process(proc())
    sim.run(until=sim.now + until)
    assert p.triggered, "kv client did not finish"
    if not p.ok:
        raise p.value
    return p.value


class TestPutGet:
    def test_put_then_two_sided_get(self, sim):
        a, b, server, client = setup_kv(sim)

        def body():
            yield from client.put(b"alpha", b"first value")
            value = yield from client.get(b"alpha")
            return value

        assert run_client(sim, server, client, body) == b"first value"
        assert server.stats.puts == 1
        assert server.stats.gets_two_sided == 1

    def test_put_then_one_sided_get(self, sim):
        a, b, server, client = setup_kv(sim)

        def body():
            yield from client.put(b"beta", b"read me remotely")
            value = yield from client.get_rdma(b"beta")
            return value

        assert run_client(sim, server, client, body) == b"read me remotely"
        assert client.stats.gets_one_sided == 1
        # One-sided GETs never ran server code.
        assert server.stats.gets_two_sided == 0

    def test_get_missing_key(self, sim):
        a, b, server, client = setup_kv(sim)

        def body():
            two = yield from client.get(b"ghost")
            one = yield from client.get_rdma(b"ghost")
            return two, one

        two, one = run_client(sim, server, client, body)
        assert two is None and one is None

    def test_overwrite_value(self, sim):
        a, b, server, client = setup_kv(sim)

        def body():
            yield from client.put(b"k", b"v1")
            yield from client.put(b"k", b"v2-longer")
            return (yield from client.get_rdma(b"k"))

        assert run_client(sim, server, client, body) == b"v2-longer"

    def test_many_keys_and_collisions(self, sim):
        a, b, server, client = setup_kv(sim, slot_count=16, slot_size=128)
        keys = [f"key-{i}".encode() for i in range(12)]

        def body():
            stored = []
            for k in keys:
                try:
                    yield from client.put(k, b"=" + k)
                    stored.append(k)
                except Exception:
                    pass        # table full past the probe limit
            ok = 0
            for k in stored:
                v = yield from client.get_rdma(k)
                if v == b"=" + k:
                    ok += 1
            return len(stored), ok

        stored, ok = run_client(sim, server, client, body)
        assert stored >= 8          # most keys fit despite collisions
        assert ok == stored         # everything stored is readable one-sided

    def test_one_sided_get_leaves_server_cpu_idle(self, sim):
        a, b, server, client = setup_kv(sim)

        def body():
            yield from client.put(b"hot", b"x" * 64)
            b.host.reset_cpu_stats()
            for _ in range(20):
                yield from client.get_rdma(b"hot")
            one_sided_busy = b.host.cpu.busy_by_category.get("kv-server", 0.0)
            b.host.reset_cpu_stats()
            for _ in range(20):
                yield from client.get(b"hot")
            two_sided_busy = b.host.cpu.busy_by_category.get("kv-server", 0.0)
            return one_sided_busy, two_sided_busy

        one, two = run_client(sim, server, client, body)
        assert one == 0.0            # the paper's §2.1 RDMA promise
        assert two > 0.0


class TestSlotTable:
    def test_geometry_validation(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def proc():
            buf = yield from a.iface.register_memory(1024)
            with pytest.raises(Exception):
                SlotTable(buf, slot_count=100, slot_size=128)  # too small
            return True

        p = sim.process(proc())
        sim.run(until=1_000_000)
        assert p.ok and p.value


class TestMultiClient:
    def test_three_clients_share_one_store(self, sim):
        from repro.bench.configs import build_qpip_cluster
        nodes, _fabric = build_qpip_cluster(sim, 4)
        server = KvServer(nodes[0], slot_count=64, slot_size=128)
        sim.process(server.run(max_clients=3))
        results = {}

        def client_proc(i):
            client = KvClient(nodes[i], nodes[0].addr)
            info = yield server.ready
            yield sim.timeout(500 + i * 200)
            yield from client.connect(info)
            # Each client writes its own key...
            yield from client.put(f"owner-{i}".encode(), f"node{i}".encode())
            yield sim.timeout(50_000)   # let everyone write
            # ...and reads everyone's keys one-sided.
            out = {}
            for j in (1, 2, 3):
                v = yield from client.get_rdma(f"owner-{j}".encode())
                out[j] = v
            results[i] = out

        procs = [sim.process(client_proc(i)) for i in (1, 2, 3)]
        sim.run(until=sim.now + 120_000_000)
        for p in procs:
            assert p.triggered, "kv client hung"
            if not p.ok:
                raise p.value
        for i in (1, 2, 3):
            for j in (1, 2, 3):
                assert results[i][j] == f"node{j}".encode()
        assert server.stats.puts == 3
