"""Tests for repro.collectives: host engine vs NIC offload.

The contract under test: both engines run the identical ring schedule
and accumulation rule, so for the same seed/vector they must produce
bit-identical results — and the NIC engine (schedule in firmware, one
doorbell, one CQE) must beat the host engine (a verbs round trip per
step) on latency.
"""

import pytest

from repro import obs
from repro.bench.configs import build_qpip_cluster
from repro.collectives import (CollectiveWorkSpec, allreduce_oracle,
                               chunk_bounds, collective_rank_driver,
                               decode_frame, encode_frame, max_frame_elems,
                               peer_pairs, rank_vector,
                               recursive_doubling_local, result_digest,
                               ring_allreduce_local)
from repro.errors import ConfigError, NetworkError
from repro.obs import TraceQuery
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_collective(sim, world, spec, until=60_000_000):
    """Run one op across ``world`` directly-built hosts; return records."""
    nodes, _fabric = build_qpip_cluster(sim, world)
    records = {rank: {} for rank in range(world)}
    procs = [sim.process(collective_rank_driver(
        sim, nodes[rank], rank, world, spec, records[rank]))
        for rank in range(world)]
    sim.run(until=sim.now + until)
    for rank, proc in enumerate(procs):
        assert proc.triggered, f"rank {rank} did not finish"
        if not proc.ok:
            raise proc.value
    return records


class TestSchedules:
    def test_chunk_bounds_cover_vector(self):
        for length, world in ((17, 4), (3, 8), (0, 3), (16, 16)):
            bounds = chunk_bounds(length, world)
            assert len(bounds) == world
            assert sum(cnt for _off, cnt in bounds) == length
            offset = 0
            for off, cnt in bounds:
                assert off == offset
                offset += cnt

    def test_ring_local_matches_oracle(self):
        world, length, seed = 5, 37, 9
        vectors = [rank_vector(r, world, length, seed)
                   for r in range(world)]
        expected = allreduce_oracle(world, length, seed)
        for acc in ring_allreduce_local(vectors):
            assert acc == expected

    def test_rd_local_matches_oracle(self):
        world, length, seed = 8, 21, 3
        vectors = [rank_vector(r, world, length, seed)
                   for r in range(world)]
        expected = allreduce_oracle(world, length, seed)
        for acc in recursive_doubling_local(vectors):
            assert acc == expected

    def test_peer_pairs(self):
        assert peer_pairs(4) == [(0, 1), (0, 3), (1, 2), (2, 3)]
        assert peer_pairs(1) == []
        rd = peer_pairs(4, variant="rd")
        assert (0, 2) in rd and (1, 3) in rd


class TestFrames:
    def test_roundtrip(self):
        body = b"\x01" * 24
        data = encode_frame(kind=1, algo=2, phase=1, group=0, seq=3,
                            step=4, offset=5, count=3, payload=body)
        hdr, out = decode_frame(data)
        assert out == body
        assert (hdr.kind, hdr.algo, hdr.step, hdr.offset, hdr.count) \
            == (1, 2, 4, 5, 3)

    def test_truncated_frame_rejected(self):
        with pytest.raises(NetworkError):
            decode_frame(b"\x01\x02")

    def test_max_frame_elems_positive(self):
        assert max_frame_elems(16384) > 0
        assert max_frame_elems(16384) >= max_frame_elems(4096)


class TestWorkSpecValidation:
    def test_bad_fields(self):
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(algo="scan")
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(engine="dpu")
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(variant="tree")
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(vector_len=-1)

    def test_rd_is_host_allreduce_only(self):
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(variant="rd", engine="nic")
        with pytest.raises(ConfigError):
            CollectiveWorkSpec(variant="rd", engine="host", algo="barrier")
        spec = CollectiveWorkSpec(variant="rd", engine="host")
        with pytest.raises(ConfigError):
            spec.validate_world(6)       # not a power of two
        spec.validate_world(8)

    def test_root_outside_world(self):
        spec = CollectiveWorkSpec(algo="broadcast", root=9)
        with pytest.raises(ConfigError):
            spec.validate_world(4)


class TestEnginesAgree:
    """Same seed, same vector => bit-identical results across engines."""

    def _run_both(self, world, **kwargs):
        out = {}
        for engine in ("host", "nic"):
            spec = CollectiveWorkSpec(engine=engine, **kwargs)
            out[engine] = run_collective(Simulator(), world, spec)
        return out

    def test_allreduce_matches_oracle_both_engines(self):
        world, length, seed = 4, 48, 7
        expected = allreduce_oracle(world, length, seed)
        runs = self._run_both(world, algo="allreduce", vector_len=length,
                              seed=seed)
        for engine, records in runs.items():
            for rank in range(world):
                rec = records[rank]
                assert rec["status"] == "SUCCESS", (engine, rank)
                assert rec["result_digest"] == result_digest(expected), \
                    (engine, rank)

    def test_identical_stats_across_engines(self):
        runs = self._run_both(4, algo="allreduce", vector_len=48, seed=7)
        for rank in range(4):
            host = runs["host"][rank]["stats"]
            nic = runs["nic"][rank]["stats"]
            assert host["steps"] == nic["steps"] == 6       # 2*(world-1)
            assert host["bytes_sent"] == nic["bytes_sent"]
            assert host["phase_bytes"] == nic["phase_bytes"]
            assert host["wall_time_us"] > 0
            assert nic["wall_time_us"] > 0

    def test_nic_beats_host_latency(self):
        runs = self._run_both(8, algo="allreduce", vector_len=128, seed=2)
        host_us = max(runs["host"][r]["stats"]["wall_time_us"]
                      for r in range(8))
        nic_us = max(runs["nic"][r]["stats"]["wall_time_us"]
                     for r in range(8))
        assert nic_us < host_us, (nic_us, host_us)

    def test_broadcast_nonzero_root(self):
        world, length, seed = 4, 33, 5
        expected = result_digest(rank_vector(2, world, length, seed))
        runs = self._run_both(world, algo="broadcast", vector_len=length,
                              root=2, seed=seed)
        for engine, records in runs.items():
            for rank in range(world):
                assert records[rank]["result_digest"] == expected, \
                    (engine, rank)

    def test_barrier(self):
        runs = self._run_both(4, algo="barrier")
        for engine, records in runs.items():
            for rank in range(4):
                rec = records[rank]
                assert rec["status"] == "SUCCESS", (engine, rank)
                assert rec["stats"]["steps"] == 2

    def test_empty_vector_no_wire_traffic(self):
        runs = self._run_both(3, algo="allreduce", vector_len=0)
        for engine, records in runs.items():
            for rank in range(3):
                stats = records[rank]["stats"]
                assert stats["steps"] == 0, engine
                assert stats["bytes_sent"] == 0, engine

    def test_world_of_one_is_identity(self):
        vec = rank_vector(0, 1, 16, seed=4)
        runs = self._run_both(1, algo="allreduce", vector_len=16, seed=4)
        for engine, records in runs.items():
            assert records[0]["result_digest"] == result_digest(vec), engine
            assert records[0]["stats"]["bytes_sent"] == 0

    def test_rendezvous_path_matches_oracle(self, sim):
        # Chunks of 8192B exceed the 4096B eager threshold: the NIC
        # engine must switch to RTS/CTS without changing the bits.
        world, length, seed = 4, 4096, 11
        spec = CollectiveWorkSpec(engine="nic", algo="allreduce",
                                  vector_len=length, seed=seed,
                                  eager_threshold=4096)
        records = run_collective(sim, world, spec)
        expected = result_digest(allreduce_oracle(world, length, seed))
        for rank in range(world):
            assert records[rank]["result_digest"] == expected
            assert "rendezvous" in records[rank]["stats"]["phase_bytes"]

    def test_rd_variant_matches_oracle(self, sim):
        world, length, seed = 8, 50, 13
        spec = CollectiveWorkSpec(engine="host", variant="rd",
                                  algo="allreduce", vector_len=length,
                                  seed=seed)
        records = run_collective(sim, world, spec)
        expected = result_digest(allreduce_oracle(world, length, seed))
        for rank in range(world):
            assert records[rank]["result_digest"] == expected
            assert records[rank]["stats"]["steps"] == 3    # log2(8)


class TestObsSpans:
    """Collective phases are visible to the tracer in both engines."""

    @pytest.mark.parametrize("engine", ["host", "nic"])
    def test_allreduce_phase_spans(self, sim, engine):
        spec = CollectiveWorkSpec(engine=engine, algo="allreduce",
                                  vector_len=64, seed=3)
        with obs.capture(sim) as rec:
            run_collective(sim, 4, spec)
        query = TraceQuery(rec)
        # Reduce-scatter completes before allgather on every rank.
        query.assert_span_order("collective.reduce_scatter",
                                "collective.allgather", cat="coll")
        assert query.count("coll", "collective.reduce_scatter",
                           ph="b") == 4
        assert query.count("coll", "collective.allgather", ph="b") == 4

    @pytest.mark.parametrize("engine", ["host", "nic"])
    def test_barrier_release_events(self, sim, engine):
        spec = CollectiveWorkSpec(engine=engine, algo="barrier")
        with obs.capture(sim) as rec:
            run_collective(sim, 4, spec)
        query = TraceQuery(rec)
        assert query.count("coll", "collective.barrier_release") == 4
        for rank in range(4):
            assert query.first("coll", "collective.barrier_release",
                               rank=rank) is not None

    def test_tracing_does_not_change_results(self):
        spec = CollectiveWorkSpec(engine="nic", algo="allreduce",
                                  vector_len=64, seed=3)
        plain = run_collective(Simulator(), 4, spec)
        sim = Simulator()
        with obs.capture(sim):
            traced = run_collective(sim, 4, spec)
        for rank in range(4):
            assert plain[rank]["result_digest"] \
                == traced[rank]["result_digest"]
            assert plain[rank]["stats"] == traced[rank]["stats"]


class TestJobAndCli:
    def test_job_summary(self):
        from repro.collectives import CollectiveJob
        work = CollectiveWorkSpec(engine="nic", algo="allreduce",
                                  vector_len=128, seed=5)
        summary = CollectiveJob(work, hosts=8).run()
        assert summary["status_ok"]
        assert summary["ranks_agree"]
        assert summary["oracle_match"]
        assert summary["world"] == 8
        assert summary["max_wall_time_us"] > 0

    def test_cli_collective(self, capsys):
        from repro.cli import main
        rc = main(["collective", "--engine", "nic", "--algo", "allreduce",
                   "--hosts", "8", "--vector-len", "64", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert '"ok": true' in out

    def test_cli_collective_bad_config(self, capsys):
        from repro.cli import main
        rc = main(["collective", "--engine", "nic", "--variant", "rd",
                   "--json"])
        out = capsys.readouterr().out
        assert rc == 1
        assert '"ok": false' in out

    def test_collective_report(self):
        from repro.collectives import COLLECTIVE_FLOW_BASE
        from repro.tools.inspect import (collective_records,
                                         collective_report)
        spec = CollectiveWorkSpec(engine="nic", algo="allreduce",
                                  vector_len=32, seed=6)
        records = run_collective(Simulator(), 3, spec)
        flows = {COLLECTIVE_FLOW_BASE + rank: rec
                 for rank, rec in records.items()}
        extracted = collective_records(flows)
        assert sorted(extracted) == [0, 1, 2]
        report = collective_report(extracted)
        assert "engine=nic" in report
        assert "phase reduce_scatter" in report
