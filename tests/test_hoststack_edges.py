"""Host-stack edge cases: backlog, UDP overflow, concurrent sockets,
kernel-context sockets, and the loopback device."""

import pytest

from repro.bench.configs import build_gige_pair
from repro.errors import SocketError
from repro.hoststack import TcpSocket, UdpSocket, attach_loopback
from repro.hoststack.kernel import HostKernel
from repro.hw import Host
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.packet import BytesPayload, ZeroPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def gige(sim):
    return build_gige_pair(sim)


def run_all(sim, *gens, until=30_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


class TestListenerBacklog:
    def test_syn_dropped_beyond_backlog_then_retried(self, sim, gige):
        a, b, _f = gige
        lsock = TcpSocket(b.kernel, b.addr)
        lsock.listen(5000, backlog=1)
        results = {}

        def client(tag, delay):
            yield sim.timeout(delay)
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            results[tag] = sim.now

        def acceptor():
            # Accept slowly: the second SYN must wait for a slot.
            for _ in range(2):
                yield sim.timeout(5_000)
                yield from lsock.accept()

        run_all(sim, client("a", 0), client("b", 10), acceptor(),
                until=60_000_000)
        assert "a" in results and "b" in results
        # The second client needed SYN retransmission -> visibly later.
        assert lsock.listener.syn_drops >= 1

    def test_many_concurrent_connections_one_port(self, sim, gige):
        a, b, _f = gige
        lsock = TcpSocket(b.kernel, b.addr)
        lsock.listen(5000, backlog=16)
        got = []

        def server():
            for _ in range(5):
                conn = yield from lsock.accept()
                data = yield from conn.recv_exact(4)
                got.append(data.to_bytes())

        def client(i):
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(BytesPayload(f"c{i:03d}".encode()))

        run_all(sim, server(), *[client(i) for i in range(5)])
        assert sorted(got) == [f"c{i:03d}".encode() for i in range(5)]


class TestUdpEdges:
    def test_rx_queue_overflow_drops(self, sim, gige):
        a, b, _f = gige
        server_sock = UdpSocket(b.kernel, b.addr)
        server_sock.bind(7000)
        server_sock.endpoint.rx.capacity = 2

        def client():
            sock = UdpSocket(a.kernel, a.addr)
            sock.bind()
            for _ in range(10):
                yield from sock.sendto(Endpoint(b.addr, 7000), ZeroPayload(64))
            yield sim.timeout(1_000_000)

        run_all(sim, client())
        assert server_sock.endpoint.dropped == 8
        assert len(server_sock.endpoint.rx) == 2

    def test_recv_before_bind_raises(self, sim, gige):
        a, _b, _f = gige
        sock = UdpSocket(a.kernel, a.addr)

        def proc():
            with pytest.raises(SocketError):
                yield from sock.recvfrom()

        run_all(sim, proc())

    def test_double_bind_rejected(self, sim, gige):
        a, _b, _f = gige
        s1 = UdpSocket(a.kernel, a.addr)
        s1.bind(7000)
        s2 = UdpSocket(a.kernel, a.addr)
        with pytest.raises(SocketError):
            s2.bind(7000)


class TestKernelContext:
    def test_in_kernel_socket_skips_syscall_cost(self, sim, gige):
        a, b, _f = gige

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            yield from conn.recv_exact(100_000)

        def client():
            sock = TcpSocket(a.kernel, a.addr, in_kernel=True)
            yield from sock.connect(Endpoint(b.addr, 5000))
            a.host.reset_cpu_stats()
            yield from sock.send(ZeroPayload(100_000))
            return a.host.cpu.busy_by_category.get("syscall", 0.0)

        results = run_all(sim, server(), client())
        kernel_syscall = results[1]
        # In-kernel callers still pay socket-layer cost but not the
        # user/kernel boundary crossing; per-send cost stays small.
        assert kernel_syscall < 30.0


class TestLoopbackEdges:
    def _solo(self, sim):
        host = Host(sim, "solo")
        kernel = HostKernel(sim, host)
        addr = IPv4Address.parse("127.0.0.1")
        attach_loopback(kernel, addr)
        return host, kernel, addr

    def test_two_simultaneous_loopback_connections(self, sim):
        host, kernel, addr = self._solo(sim)
        results = {}

        def server(port):
            lsock = TcpSocket(kernel, addr)
            lsock.listen(port)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(5)
            results[port] = data.to_bytes()

        def client(port, tag):
            sock = TcpSocket(kernel, addr)
            yield from sock.connect(Endpoint(addr, port))
            yield from sock.send(BytesPayload(tag))

        run_all(sim, server(6000), server(6001),
                client(6000, b"alpha"), client(6001, b"bravo"))
        assert results == {6000: b"alpha", 6001: b"bravo"}

    def test_loopback_large_transfer(self, sim):
        host, kernel, addr = self._solo(sim)
        results = {}

        def server():
            lsock = TcpSocket(kernel, addr)
            lsock.listen(6000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(1_000_000)
            results["got"] = data.length

        def client():
            sock = TcpSocket(kernel, addr)
            yield from sock.connect(Endpoint(addr, 6000))
            yield from sock.send(ZeroPayload(1_000_000))

        run_all(sim, server(), client(), until=120_000_000)
        assert results["got"] == 1_000_000


class TestCpuContention:
    def test_network_and_compute_share_the_host(self, sim, gige):
        """A compute hog on the receiver slows the transfer (the paper's
        whole point: host-based stacks steal application cycles)."""
        a, b, _f = gige

        def hog():
            # 60% duty-cycle compute load on the receiving host.
            while sim.now < 60_000_000:
                yield b.host.cpu.submit(600, category="app-compute")
                yield sim.timeout(400)

        def run_transfer(with_hog):
            s = Simulator()
            aa, bb, _ff = build_gige_pair(s)
            if with_hog:
                def hog2():
                    while True:
                        yield bb.host.cpu.submit(600, category="app-compute")
                        yield s.timeout(400)
                s.process(hog2())
            from repro.apps.ttcp import socket_ttcp
            r = socket_ttcp(s, aa, bb, total_bytes=2 * 1024 * 1024)
            return r.mb_per_sec

        clean = run_transfer(False)
        loaded = run_transfer(True)
        assert loaded < clean * 0.8
