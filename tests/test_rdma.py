"""Tests for the RDMA extension (one-sided WRITE/READ over QPIP).

The paper's QP model (§2.1) includes RDMA; the prototype implements only
send-receive.  This extension adds it with DDP-style framing — see
``repro.core.rdma`` for the rationale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.configs import build_qpip_pair
from repro.core import QPTransport, WROpcode, WRStatus
from repro.core.rdma import RDMA_HDR_LEN, RdmaHeader, RdmaOpcode, frame, unframe
from repro.errors import NetworkError, VerbsError
from repro.mem import SGE, Access
from repro.net.packet import BytesPayload, ZeroPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_procs(sim, *gens, until=60_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


class TestRdmaHeader:
    def test_roundtrip(self):
        h = RdmaHeader(RdmaOpcode.WRITE, rkey=0x123, remote_addr=0x1000_0040,
                       length=5000, sink_key=7, sink_addr=0x2000_0000)
        decoded = RdmaHeader.decode(h.encode())
        assert decoded == h
        assert len(h.encode()) == RDMA_HDR_LEN

    def test_bad_opcode_rejected(self):
        raw = bytearray(RdmaHeader(RdmaOpcode.SEND).encode())
        raw[0] = 0xEE
        with pytest.raises(NetworkError):
            RdmaHeader.decode(bytes(raw))

    def test_short_header_rejected(self):
        with pytest.raises(NetworkError):
            RdmaHeader.decode(b"\x00" * 8)

    @settings(max_examples=50, deadline=None)
    @given(op=st.sampled_from(list(RdmaOpcode)),
           rkey=st.integers(0, 0xFFFFFFFF),
           addr=st.integers(0, (1 << 64) - 1),
           length=st.integers(0, 0xFFFFFFFF))
    def test_roundtrip_property(self, op, rkey, addr, length):
        h = RdmaHeader(op, rkey=rkey, remote_addr=addr, length=length)
        assert RdmaHeader.decode(h.encode()) == h

    def test_frame_unframe(self):
        h = RdmaHeader(RdmaOpcode.WRITE, rkey=1, remote_addr=2, length=3)
        framed = frame(h, BytesPayload(b"xyz"))
        hdr, body = unframe(framed)
        assert hdr == h
        assert body.to_bytes() == b"xyz"

    def test_frame_keeps_bulk_zero_virtual(self):
        h = RdmaHeader(RdmaOpcode.WRITE, length=1 << 20)
        framed = frame(h, ZeroPayload(1 << 20))
        # The megabyte of zeros must not materialize.
        from repro.net.packet import ChainPayload
        assert isinstance(framed, ChainPayload)
        hdr, body = unframe(framed)
        assert hdr == h and body.length == 1 << 20


def setup_rdma_qps(sim, a, b, port=9100):
    """Connected rdma-enabled QPs plus an exposed remote buffer on b."""
    rig = {}

    def server():
        iface = b.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, rdma=True)
        rbuf = yield from iface.register_memory(
            256 * 1024, access=Access.local() | Access.REMOTE_WRITE
            | Access.REMOTE_READ)
        recv = yield from iface.register_memory(16 * 1024)
        yield from iface.post_recv(qp, [recv.sge()])
        listener = yield from iface.listen(port)
        yield from iface.accept(listener, qp)
        rig.update(server_qp=qp, server_cq=cq, rbuf=rbuf, server_recv=recv)

    def client():
        iface = a.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, rdma=True)
        recv = yield from iface.register_memory(16 * 1024)
        yield from iface.post_recv(qp, [recv.sge()])
        lbuf = yield from iface.register_memory(256 * 1024)
        yield sim.timeout(500)
        yield from iface.connect(qp, Endpoint(b.addr, port))
        rig.update(client_qp=qp, client_cq=cq, lbuf=lbuf, client_recv=recv)

    from repro.net.addresses import Endpoint
    run_procs(sim, server(), client())
    return rig


from repro.net.addresses import Endpoint  # noqa: E402  (used in helper)


class TestRdmaWrite:
    def test_write_places_data_without_target_involvement(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        rbuf = rig["rbuf"]

        def client():
            iface = a.iface
            lbuf = rig["lbuf"]
            lbuf.write(b"one-sided!")
            yield from iface.post_rdma_write(
                rig["client_qp"], [lbuf.sge(0, 10)],
                remote_addr=rbuf.addr + 100, rkey=rbuf.lkey)
            cqes = yield from iface.wait(rig["client_cq"])
            return cqes[0]

        (cqe,) = run_procs(sim, client())
        assert cqe.ok and cqe.opcode is WROpcode.RDMA_WRITE
        # Data landed in the server's registered memory; its CQ is silent.
        assert rbuf.read(10, offset=100) == b"one-sided!"
        assert len(rig["server_cq"]) == 0

    def test_large_write_spans_many_segments(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        rbuf = rig["rbuf"]
        pattern = bytes(range(256)) * 256     # 64 KiB

        def client():
            iface = a.iface
            lbuf = rig["lbuf"]
            lbuf.write(pattern)
            yield from iface.post_rdma_write(
                rig["client_qp"], [lbuf.sge(0, len(pattern))],
                remote_addr=rbuf.addr, rkey=rbuf.lkey)
            cqes = yield from iface.wait(rig["client_cq"])
            return cqes[0]

        (cqe,) = run_procs(sim, client())
        assert cqe.ok
        assert rbuf.read(len(pattern)) == pattern
        # More than one TCP segment was needed (16K MTU, 64K payload).
        assert a.nic.packets_tx >= 4

    def test_write_to_bad_rkey_errors_connection(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)

        def client():
            iface = a.iface
            yield from iface.post_rdma_write(
                rig["client_qp"], [rig["lbuf"].sge(0, 16)],
                remote_addr=0xDEAD0000, rkey=0x7777)
            yield sim.timeout(5_000_000)

        run_procs(sim, client())
        from repro.core import QPState
        assert rig["server_qp"].state is QPState.ERROR
        assert rig["client_qp"].state is QPState.ERROR   # RST came back

    def test_write_outside_region_rejected(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        rbuf = rig["rbuf"]

        def client():
            iface = a.iface
            yield from iface.post_rdma_write(
                rig["client_qp"], [rig["lbuf"].sge(0, 4096)],
                remote_addr=rbuf.addr + rbuf.length - 100, rkey=rbuf.lkey)
            yield sim.timeout(5_000_000)

        run_procs(sim, client())
        from repro.core import QPState
        assert rig["server_qp"].state is QPState.ERROR


class TestRdmaRead:
    def test_read_pulls_remote_data(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        rig["rbuf"].write(b"pull me across the SAN", offset=64)

        def client():
            iface = a.iface
            lbuf = rig["lbuf"]
            yield from iface.post_rdma_read(
                rig["client_qp"], lbuf.sge(0, 22),
                remote_addr=rig["rbuf"].addr + 64, rkey=rig["rbuf"].lkey)
            cqes = yield from iface.wait(rig["client_cq"])
            return cqes[0]

        (cqe,) = run_procs(sim, client())
        assert cqe.ok and cqe.opcode is WROpcode.RDMA_READ
        assert cqe.byte_len == 22
        assert rig["lbuf"].read(22) == b"pull me across the SAN"

    def test_large_read_chunks_and_completes_once(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        pattern = bytes(reversed(range(256))) * 200    # 51200 B
        rig["rbuf"].write(pattern)

        def client():
            iface = a.iface
            yield from iface.post_rdma_read(
                rig["client_qp"], rig["lbuf"].sge(0, len(pattern)),
                remote_addr=rig["rbuf"].addr, rkey=rig["rbuf"].lkey)
            cqes = yield from iface.wait(rig["client_cq"])
            return cqes

        (cqes,) = run_procs(sim, client())
        assert len(cqes) == 1
        assert rig["lbuf"].read(len(pattern)) == pattern

    def test_read_from_unreadable_region_errors(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        # The server's recv buffer was registered without REMOTE_READ.
        target = rig["server_recv"]

        def client():
            iface = a.iface
            yield from iface.post_rdma_read(
                rig["client_qp"], rig["lbuf"].sge(0, 64),
                remote_addr=target.addr, rkey=target.lkey)
            yield sim.timeout(5_000_000)

        run_procs(sim, client())
        from repro.core import QPState
        assert rig["server_qp"].state is QPState.ERROR


class TestRdmaSendInterleave:
    def test_sends_still_work_on_rdma_qp(self, sim):
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)

        def client():
            iface = a.iface
            lbuf = rig["lbuf"]
            lbuf.write(b"untagged")
            yield from iface.post_send(rig["client_qp"], [lbuf.sge(0, 8)])
            cqes = yield from iface.wait(rig["client_cq"])
            return cqes[0]

        def server():
            iface = b.iface
            cqes = yield from iface.wait(rig["server_cq"])
            return cqes[0], rig["server_recv"].read(8)

        (send_cqe, (recv_cqe, data)) = run_procs(sim, client(), server())
        assert send_cqe.ok
        assert recv_cqe.opcode is WROpcode.RECV
        assert recv_cqe.byte_len == 8
        assert data == b"untagged"

    def test_write_then_send_ordering(self, sim):
        """The classic RDMA idiom: bulk WRITE, then a SEND to notify."""
        a, b, _f = build_qpip_pair(sim)
        rig = setup_rdma_qps(sim, a, b)
        rbuf = rig["rbuf"]

        def client():
            iface = a.iface
            lbuf = rig["lbuf"]
            lbuf.write(b"B" * 20000)
            yield from iface.post_rdma_write(
                rig["client_qp"], [lbuf.sge(0, 20000)],
                remote_addr=rbuf.addr, rkey=rbuf.lkey)
            yield from iface.post_send(rig["client_qp"], [lbuf.sge(0, 4)])
            done = 0
            while done < 2:
                done += len((yield from iface.wait(rig["client_cq"])))

        def server():
            iface = b.iface
            cqes = yield from iface.wait(rig["server_cq"])
            assert cqes[0].opcode is WROpcode.RECV
            # TCP ordering: by the time the notify SEND arrives, the
            # preceding WRITE's data is already placed.
            return rbuf.read(20000)

        _c, data = run_procs(sim, client(), server())
        assert data == b"B" * 20000


class TestRdmaValidation:
    def test_rdma_on_plain_qp_rejected(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)   # no rdma
            buf = yield from iface.register_memory(4096)
            with pytest.raises(VerbsError):
                yield from iface.post_rdma_write(qp, [buf.sge(0, 4)],
                                                 remote_addr=1, rkey=1)

        run_procs(sim, client())

    def test_rdma_on_udp_rejected(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.UDP, cq, rdma=True)
            buf = yield from iface.register_memory(4096)
            with pytest.raises(VerbsError):
                yield from iface.post_rdma_write(qp, [buf.sge(0, 4)],
                                                 remote_addr=1, rkey=1)

        run_procs(sim, client())

    def test_read_requires_single_sink(self):
        from repro.core import WorkRequest
        with pytest.raises(VerbsError):
            WorkRequest(1, WROpcode.RDMA_READ,
                        [SGE(0, 4, 1), SGE(8, 4, 1)], remote_addr=0, rkey=1)

    def test_rdma_wr_requires_remote_info(self):
        from repro.core import WorkRequest
        with pytest.raises(VerbsError):
            WorkRequest(1, WROpcode.RDMA_WRITE, [SGE(0, 4, 1)])
