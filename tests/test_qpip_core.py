"""Integration tests for the QPIP core: verbs, firmware FSMs, QP
semantics over the simulated Myrinet fabric."""

import pytest

from repro import obs
from repro.bench.configs import build_qpip_pair
from repro.obs import TraceQuery
from repro.core import (MessageReassembler, QPState, QPTransport, WRStatus,
                        frame_message)
from repro.errors import MemoryRegistrationError, QPStateError, VerbsError
from repro.hw import lanai_fw_checksum, ib_class_timing
from repro.net.addresses import Endpoint
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def pair(sim):
    return build_qpip_pair(sim)


def run_procs(sim, *gens, until=30_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


def setup_connected_qps(sim, a, b, port=9000, recv_bufs=8, buf_size=16 * 1024):
    """Standard rig: server listens/accepts, client connects.

    Returns dict with qps, cqs, and pre-posted receive buffers.
    """
    rig = {}

    def server():
        cq = yield from b.iface.create_cq()
        qp = yield from b.iface.create_qp(QPTransport.TCP, cq)
        bufs = []
        for _ in range(recv_bufs):
            buf = yield from b.iface.register_memory(buf_size)
            yield from b.iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from b.iface.listen(port)
        yield from b.iface.accept(listener, qp)
        rig["server_qp"] = qp
        rig["server_cq"] = cq
        rig["server_bufs"] = bufs
        rig["listener"] = listener

    def client():
        cq = yield from a.iface.create_cq()
        qp = yield from a.iface.create_qp(QPTransport.TCP, cq)
        bufs = []
        for _ in range(recv_bufs):
            buf = yield from a.iface.register_memory(buf_size)
            yield from a.iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        # Let the server reach LISTEN first.
        yield sim.timeout(500)
        yield from a.iface.connect(qp, Endpoint(b.addr, port))
        rig["client_qp"] = qp
        rig["client_cq"] = cq
        rig["client_bufs"] = bufs

    run_procs(sim, server(), client())
    return rig


class TestConnectionSetup:
    def test_connect_accept_mates_qps(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)
        assert rig["client_qp"].state is QPState.CONNECTED
        assert rig["server_qp"].state is QPState.CONNECTED
        assert rig["client_qp"].remote == Endpoint(b.addr, 9000)
        # Handshake ran in the NIC: exactly 3 wire segments + window update.
        assert a.nic.packets_tx >= 2

    def test_connect_refused_when_no_listener(self, sim, pair):
        a, b, _fabric = pair

        def client():
            cq = yield from a.iface.create_cq()
            qp = yield from a.iface.create_qp(QPTransport.TCP, cq)
            with pytest.raises(Exception):
                yield from a.iface.connect(qp, Endpoint(b.addr, 4444))

        run_procs(sim, client())

    def test_multiple_qps_same_listener(self, sim, pair):
        a, b, _fabric = pair
        done = {}

        def server():
            cq = yield from b.iface.create_cq()
            listener = yield from b.iface.listen(9000)
            qps = []
            for _ in range(3):
                qp = yield from b.iface.create_qp(QPTransport.TCP, cq)
                buf = yield from b.iface.register_memory(4096)
                yield from b.iface.post_recv(qp, [buf.sge()])
                yield from b.iface.accept(listener, qp)
                qps.append(qp)
            done["server_qps"] = qps

        def client():
            cq = yield from a.iface.create_cq()
            yield sim.timeout(1000)
            qps = []
            for _ in range(3):
                qp = yield from a.iface.create_qp(QPTransport.TCP, cq)
                yield from a.iface.connect(qp, Endpoint(b.addr, 9000))
                qps.append(qp)
            done["client_qps"] = qps

        run_procs(sim, server(), client())
        assert len(done["server_qps"]) == 3
        assert all(qp.state is QPState.CONNECTED for qp in done["server_qps"])
        ports = {qp.remote.port for qp in done["server_qps"]}
        assert len(ports) == 3     # three distinct client ports


class TestSendReceive:
    def test_message_roundtrip_with_real_data(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)
        results = {}

        def client():
            buf = yield from a.iface.register_memory(4096)
            buf.write(b"direct data placement!")
            yield from a.iface.post_send(rig["client_qp"],
                                         [buf.sge(0, 22)])
            cqes = yield from a.iface.wait(rig["client_cq"])
            results["send_cqe"] = cqes[0]

        def server():
            cqes = yield from b.iface.wait(rig["server_cq"])
            results["recv_cqe"] = cqes[0]
            results["data"] = rig["server_bufs"][0].read(22)

        with obs.capture(sim) as rec:
            run_procs(sim, client(), server())
        assert results["data"] == b"direct data placement!"
        assert results["recv_cqe"].byte_len == 22
        assert results["recv_cqe"].ok
        # Send completes only when the data is ACKed (paper §3).
        assert results["send_cqe"].ok
        # The WR is visible at every layer it crossed, in causal order:
        # posted on the host, fetched by firmware, serialized, switched,
        # received, delivered by the remote firmware, completed.
        q = TraceQuery(rec)
        q.assert_span_order("wr.send", "fw.fetch_wr", "nic.tx",
                            "switch.fwd", "nic.rx", "fw.deliver", "cqe")
        q.assert_no_event("fw", "qp.error")
        q.assert_latency_between("wr.send", "cqe", max_us=10_000)

    def test_many_messages_in_order(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=64, buf_size=4096)
        got = []

        def client():
            buf = yield from a.iface.register_memory(4096)
            for i in range(32):
                buf.write(i.to_bytes(4, "big"))
                yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 4)])
                # Wait for the send completion so the buffer can be reused.
                yield from a.iface.wait(rig["client_cq"])

        def server():
            seen = 0
            while seen < 32:
                cqes = yield from b.iface.wait(rig["server_cq"])
                for cqe in cqes:
                    got.append(rig["server_bufs"][seen].read(4))
                    seen += 1

        run_procs(sim, client(), server())
        assert got == [i.to_bytes(4, "big") for i in range(32)]

    def test_completion_counts(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=16, buf_size=2048)

        def client():
            buf = yield from a.iface.register_memory(2048)
            for _ in range(10):
                yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 100)])
            done = 0
            while done < 10:
                cqes = yield from a.iface.wait(rig["client_cq"])
                done += len(cqes)

        with obs.capture(sim) as rec:
            run_procs(sim, client())
            sim.run(until=sim.now + 1_000_000)
        qp = rig["client_qp"]
        assert qp.sends_posted == 10
        assert qp.sends_completed == 10
        assert rig["server_qp"].recvs_completed == 10
        # The trace agrees with the QP counters, per opcode and status.
        q = TraceQuery(rec)
        assert q.count("verbs", "wr.send", ph="b") == 10
        assert q.count("verbs", "cqe", opcode="SEND", status="SUCCESS") == 10
        assert q.count("verbs", "cqe", opcode="RECV", status="SUCCESS") == 10
        assert rec.metrics.counter("cq.cqe").value == 20

    def test_unregistered_memory_rejected(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)

        def client():
            from repro.mem import SGE
            bogus = SGE(0xDEAD000, 64, 0x9999)
            yield from a.iface.post_send(rig["client_qp"], [bogus])
            # The firmware detects the protection violation at Get Data.
            cqes = yield from a.iface.wait(rig["client_cq"])
            return cqes[0]

        (cqe,) = run_procs(sim, client())
        assert cqe.status is WRStatus.LOCAL_PROTECTION_ERROR
        assert rig["client_qp"].state is QPState.ERROR

    def test_oversized_message_for_recv_wr_errors(self, sim, pair):
        a, b, _fabric = pair
        # Server posts tiny receive buffers; client sends a big message.
        rig = setup_connected_qps(sim, a, b, recv_bufs=4, buf_size=512)

        def client():
            buf = yield from a.iface.register_memory(4096)
            yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 2048)])
            yield sim.timeout(2_000_000)

        run_procs(sim, client())
        # TCP's credit window (4x512) admitted the bytes, but the message
        # overflows every posted WR: local length error at the receiver.
        assert rig["server_qp"].state is QPState.ERROR

    def test_post_to_errored_qp_raises(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)

        def client():
            qp = rig["client_qp"]
            qp.error = QPStateError("injected")
            buf = yield from a.iface.register_memory(1024)
            with pytest.raises(QPStateError):
                yield from a.iface.post_send(qp, [buf.sge()])

        run_procs(sim, client())


class TestFlowControlCredit:
    def test_receive_window_tracks_posted_wrs(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=2, buf_size=16 * 1024)
        server_ep = b.firmware.endpoints[rig["server_qp"].qp_num]
        # Paper §5.1: window == posted receive buffer space.
        assert server_ep.conn._recv_credit == 2 * 16 * 1024

    def test_sender_stalls_without_recv_credit(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=1, buf_size=8192)
        state = {}

        def client():
            buf = yield from a.iface.register_memory(16 * 1024)
            # Two messages: the second exceeds the single posted WR.
            yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 8000)])
            yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 8000)])
            cqes = yield from a.iface.wait(rig["client_cq"])
            state["first_done"] = sim.now
            # Second send is stalled on zero window.
            yield sim.timeout(200_000)
            state["completions_so_far"] = (rig["client_qp"].sends_completed)
            # Server posts another buffer: credit opens, message flows.
            buf2_holder = {}

            def server_post():
                buf2 = yield from b.iface.register_memory(8192)
                yield from b.iface.post_recv(rig["server_qp"], [buf2.sge()])
                buf2_holder["buf"] = buf2

            yield sim.process(server_post())
            cqes = yield from a.iface.wait(rig["client_cq"])
            state["second_done"] = sim.now

        run_procs(sim, client())
        assert state["completions_so_far"] == 1
        assert state["second_done"] > state["first_done"] + 200_000


class TestUdpQp:
    def test_udp_datagram_between_qps(self, sim, pair):
        a, b, _fabric = pair
        results = {}

        def server():
            cq = yield from b.iface.create_cq()
            qp = yield from b.iface.create_qp(QPTransport.UDP, cq)
            buf = yield from b.iface.register_memory(2048)
            yield from b.iface.post_recv(qp, [buf.sge()])
            yield from b.iface.bind_udp(qp, 7777)
            cqes = yield from b.iface.wait(cq)
            results["cqe"] = cqes[0]
            results["data"] = buf.read(9)

        def client():
            cq = yield from a.iface.create_cq()
            qp = yield from a.iface.create_qp(QPTransport.UDP, cq)
            yield from a.iface.bind_udp(qp)
            buf = yield from a.iface.register_memory(2048)
            buf.write(b"best effo")
            yield sim.timeout(1000)
            yield from a.iface.post_send(qp, [buf.sge(0, 9)],
                                         dest=Endpoint(b.addr, 7777))
            cqes = yield from a.iface.wait(cq)
            results["send_ok"] = cqes[0].ok

        run_procs(sim, client(), server())
        assert results["data"] == b"best effo"
        assert results["cqe"].src is not None    # source filled in (paper §3)
        assert results["send_ok"]

    def test_udp_without_recv_wr_drops(self, sim, pair):
        a, b, _fabric = pair

        def server():
            cq = yield from b.iface.create_cq()
            qp = yield from b.iface.create_qp(QPTransport.UDP, cq)
            yield from b.iface.bind_udp(qp, 7777)   # no receive WR posted

        def client():
            cq = yield from a.iface.create_cq()
            qp = yield from a.iface.create_qp(QPTransport.UDP, cq)
            yield from a.iface.bind_udp(qp)
            buf = yield from a.iface.register_memory(1024)
            yield sim.timeout(1000)
            yield from a.iface.post_send(qp, [buf.sge(0, 100)],
                                         dest=Endpoint(b.addr, 7777))
            yield sim.timeout(100_000)

        run_procs(sim, client(), server())
        assert b.firmware.udp_drops_no_wr == 1


class TestDisconnect:
    def test_orderly_disconnect_flushes_recvs(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=4)

        def client():
            yield from a.iface.disconnect(rig["client_qp"])
            yield sim.timeout(2_000_000)

        run_procs(sim, client())
        # Server saw the FIN: its posted receives flush as EOF markers.
        assert rig["server_qp"].remote_closed
        assert len(rig["server_cq"]) == 4
        cqe = rig["server_cq"].pop()
        assert cqe.status is WRStatus.FLUSHED

    def test_destroy_qp_aborts_connection(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)

        def client():
            yield from a.iface.destroy_qp(rig["client_qp"])
            yield sim.timeout(2_000_000)

        run_procs(sim, client())
        assert rig["client_qp"].state is QPState.DISCONNECTED
        # The peer got an RST: its QP enters ERROR.
        assert rig["server_qp"].state is QPState.ERROR


class TestHardwareVariants:
    def test_fw_checksum_variant_runs(self, sim):
        a, b, _fabric = build_qpip_pair(sim, nic_timing=lanai_fw_checksum())
        rig = setup_connected_qps(sim, a, b)

        def client():
            buf = yield from a.iface.register_memory(4096)
            yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 1000)])
            yield from a.iface.wait(rig["client_cq"])

        run_procs(sim, client())
        assert b.nic.cycles.samples.get("rx_checksum", 0) >= 1

    def test_ib_class_is_faster(self, sim):
        def measure(nic_timing):
            s = Simulator()
            a, b, _fabric = build_qpip_pair(s, nic_timing=nic_timing)
            rig = setup_connected_qps(s, a, b)
            times = {}

            def client():
                buf = yield from a.iface.register_memory(4096)
                times["t0"] = s.now
                # Two messages: the receiver ACKs the second immediately,
                # so this times the data path, not the delayed-ACK timer.
                yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 1)])
                yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 1)])
                done = 0
                while done < 2:
                    done += len((yield from a.iface.spin(rig["client_cq"])))
                times["t1"] = s.now

            procs = [s.process(client())]
            s.run(until=s.now + 10_000_000)
            assert procs[0].ok
            return times["t1"] - times["t0"]

        baseline = measure(None)
        accelerated = measure(ib_class_timing())
        assert accelerated < baseline / 3     # §5.2's claim, qualitatively

    def test_cycle_counter_matches_table2_stages(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)

        def client():
            buf = yield from a.iface.register_memory(4096)
            yield from a.iface.post_send(rig["client_qp"], [buf.sge(0, 1)])
            yield from a.iface.wait(rig["client_cq"])

        run_procs(sim, client())
        cc = a.nic.cycles
        t = a.nic.timing
        assert cc.mean("get_wr") == pytest.approx(t.get_wr)
        assert cc.mean("build_tcp_hdr") == pytest.approx(t.build_tcp_hdr)
        assert cc.mean("schedule") == pytest.approx(t.schedule)


class TestInterop:
    def test_reassembler_rebuilds_messages(self):
        r = MessageReassembler()
        stream = frame_message(b"hello") + frame_message(b"world!")
        # Arbitrary fragmentation, as segments off a socket would be.
        out = []
        for i in range(0, len(stream), 3):
            out.extend(r.push(stream[i:i + 3]))
        assert out == [b"hello", b"world!"]
        assert r.pending_bytes == 0

    def test_reassembler_rejects_absurd_length(self):
        import struct
        r = MessageReassembler()
        with pytest.raises(Exception):
            r.push(struct.pack("!I", 1 << 30) + b"xx")
