"""Unit + property tests for the memory subsystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryRegistrationError
from repro.mem import (PAGE_SIZE, Access, AddressSpace, BufferPool,
                       PhysicalMemory, RegisteredBuffer, SGE,
                       TranslationTable, sg_total)


@pytest.fixture
def phys():
    return PhysicalMemory(size_bytes=64 * 1024 * 1024)


@pytest.fixture
def aspace(phys):
    return AddressSpace(phys, name="test-proc")


@pytest.fixture
def table():
    return TranslationTable()


class TestAddressSpace:
    def test_alloc_is_page_aligned(self, aspace):
        rng = aspace.alloc(100)
        assert rng.addr % PAGE_SIZE == 0
        assert rng.length == 100

    def test_allocations_do_not_overlap(self, aspace):
        a = aspace.alloc(5000)
        b = aspace.alloc(5000)
        assert a.end <= b.addr

    def test_zero_alloc_rejected(self, aspace):
        with pytest.raises(MemoryRegistrationError):
            aspace.alloc(0)

    def test_write_read_roundtrip(self, aspace):
        rng = aspace.alloc(8192)
        aspace.write(rng.addr + 10, b"hello world")
        assert aspace.read(rng.addr + 10, 11) == b"hello world"

    def test_read_unwritten_is_zeros(self, aspace):
        rng = aspace.alloc(4096)
        assert aspace.read(rng.addr, 16) == bytes(16)

    def test_write_spanning_pages(self, aspace):
        rng = aspace.alloc(3 * PAGE_SIZE)
        data = bytes(range(256)) * 40  # 10240 bytes, spans 3 pages
        aspace.write(rng.addr + 100, data)
        assert aspace.read(rng.addr + 100, len(data)) == data

    def test_unmapped_access_raises(self, aspace):
        with pytest.raises(MemoryRegistrationError):
            aspace.read(0xDEAD0000, 4)
        with pytest.raises(MemoryRegistrationError):
            aspace.write(0xDEAD0000, b"x")

    def test_sparse_frames(self, phys, aspace):
        rng = aspace.alloc(1024 * PAGE_SIZE)
        assert phys.frames_materialized == 0
        aspace.write(rng.addr, b"x")
        assert phys.frames_materialized == 1

    def test_is_all_zero(self, aspace):
        rng = aspace.alloc(2 * PAGE_SIZE)
        assert aspace.is_all_zero(rng.addr, rng.length)
        aspace.write(rng.addr + PAGE_SIZE + 5, b"y")
        assert not aspace.is_all_zero(rng.addr, rng.length)
        assert aspace.is_all_zero(rng.addr, PAGE_SIZE)

    def test_fragments_coalesce_contiguous_pages(self, aspace):
        rng = aspace.alloc(4 * PAGE_SIZE)
        frags = aspace.fragments(rng.addr, 4 * PAGE_SIZE)
        # Frames allocated consecutively -> one contiguous DMA fragment.
        assert len(frags) == 1
        assert frags[0][1] == 4 * PAGE_SIZE

    def test_fragments_cover_requested_length(self, aspace):
        rng = aspace.alloc(3 * PAGE_SIZE)
        frags = aspace.fragments(rng.addr + 123, 2 * PAGE_SIZE)
        assert sum(l for _, l in frags) == 2 * PAGE_SIZE

    def test_out_of_physical_memory(self):
        small = PhysicalMemory(size_bytes=2 * PAGE_SIZE)
        a = AddressSpace(small)
        a.alloc(2 * PAGE_SIZE)
        with pytest.raises(MemoryRegistrationError):
            a.alloc(1)

    @settings(max_examples=50, deadline=None)
    @given(offset=st.integers(0, 3 * PAGE_SIZE),
           data=st.binary(min_size=1, max_size=PAGE_SIZE))
    def test_roundtrip_property(self, offset, data):
        phys = PhysicalMemory()
        a = AddressSpace(phys)
        rng = a.alloc(4 * PAGE_SIZE)
        a.write(rng.addr + offset, data)
        assert a.read(rng.addr + offset, len(data)) == data


class TestRegistration:
    def test_register_and_translate(self, aspace, table):
        rng = aspace.alloc(8192)
        mr = table.register(aspace, rng.addr, 8192)
        frags = table.translate(mr.lkey, rng.addr, 8192, Access.LOCAL_READ)
        assert sum(l for _, l in frags) == 8192

    def test_unmapped_region_rejected(self, aspace, table):
        with pytest.raises(MemoryRegistrationError):
            table.register(aspace, 0xBAD000, 4096)

    def test_unknown_key_rejected(self, table):
        with pytest.raises(MemoryRegistrationError):
            table.lookup(0xFFFF)

    def test_out_of_bounds_access_rejected(self, aspace, table):
        rng = aspace.alloc(4096)
        mr = table.register(aspace, rng.addr, 4096)
        with pytest.raises(MemoryRegistrationError):
            table.check(mr.lkey, rng.addr + 4000, 200, Access.LOCAL_READ)

    def test_access_rights_enforced(self, aspace, table):
        rng = aspace.alloc(4096)
        mr = table.register(aspace, rng.addr, 4096, access=Access.LOCAL_READ)
        with pytest.raises(MemoryRegistrationError):
            table.check(mr.lkey, rng.addr, 16, Access.LOCAL_WRITE)

    def test_deregister(self, aspace, table):
        rng = aspace.alloc(4096)
        mr = table.register(aspace, rng.addr, 4096)
        table.deregister(mr.lkey)
        with pytest.raises(MemoryRegistrationError):
            table.lookup(mr.lkey)
        with pytest.raises(MemoryRegistrationError):
            table.deregister(mr.lkey)

    def test_keys_unique(self, aspace, table):
        rng = aspace.alloc(8192)
        mr1 = table.register(aspace, rng.addr, 4096)
        mr2 = table.register(aspace, rng.addr + 4096, 4096)
        assert mr1.lkey != mr2.lkey

    def test_empty_registration_rejected(self, aspace, table):
        rng = aspace.alloc(4096)
        with pytest.raises(MemoryRegistrationError):
            table.register(aspace, rng.addr, 0)


class TestBuffers:
    def test_registered_buffer_roundtrip(self, aspace, table):
        buf = RegisteredBuffer(aspace, table, 4096)
        buf.write(b"qpip", offset=100)
        assert buf.read(4, offset=100) == b"qpip"

    def test_sge_helpers(self, aspace, table):
        buf = RegisteredBuffer(aspace, table, 4096)
        sge = buf.sge(offset=128, length=256)
        assert sge.addr == buf.addr + 128
        assert sge.length == 256
        assert sge.lkey == buf.lkey
        assert sg_total([sge, buf.sge(0, 100)]) == 356

    def test_sge_bounds_checked(self, aspace, table):
        buf = RegisteredBuffer(aspace, table, 4096)
        with pytest.raises(MemoryRegistrationError):
            buf.sge(offset=4000, length=200)

    def test_negative_sge_rejected(self):
        with pytest.raises(MemoryRegistrationError):
            SGE(0, -1, 0)

    def test_buffer_write_bounds(self, aspace, table):
        buf = RegisteredBuffer(aspace, table, 16)
        with pytest.raises(MemoryRegistrationError):
            buf.write(b"x" * 17)

    def test_pool_take_and_return(self, aspace, table):
        pool = BufferPool(aspace, table, count=2, size=4096)
        b1 = pool.take()
        b2 = pool.take()
        assert pool.available == 0
        with pytest.raises(MemoryRegistrationError):
            pool.take()
        pool.give_back(b1)
        assert pool.available == 1
        assert pool.take() is b1
        assert b2 is not b1

    def test_pool_double_free_rejected(self, aspace, table):
        pool = BufferPool(aspace, table, count=1, size=64)
        b = pool.take()
        pool.give_back(b)
        with pytest.raises(MemoryRegistrationError):
            pool.give_back(b)
