"""Unit tests for the IP layer, InetStack glue, and payload composites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, RouteError
from repro.net import InetStack, IpModule, RouteEntry
from repro.net.addresses import Endpoint, IPv4Address, IPv6Address, MacAddress
from repro.net.checksum import ones_complement_sum
from repro.net.headers.ip import IPv4Header, IPv6Header
from repro.net.headers.link import EthernetHeader, MyrinetHeader
from repro.net.headers.transport import SYN, TCPHeader, UDPHeader
from repro.net.packet import (BytesPayload, ChainPayload, Packet, ZeroPayload,
                              concat)
from repro.sim import Simulator


class FakeIface:
    def __init__(self, mtu=9000, mac=None):
        self.mtu = mtu
        self.mac = mac or MacAddress.from_index(9)
        self.sent = []

    def enqueue_tx(self, pkt):
        self.sent.append(pkt)


@pytest.fixture
def sim():
    return Simulator()


class TestIpModule:
    def _module(self, v6=True):
        ip = IpModule(name="t.ip")
        src = IPv6Address.from_index(1) if v6 else IPv4Address.from_index(1)
        dst = IPv6Address.from_index(2) if v6 else IPv4Address.from_index(2)
        iface = FakeIface()
        ip.add_local(src)
        ip.add_route(dst, RouteEntry(iface=iface, source_route=[3]))
        return ip, src, dst, iface

    def test_build_v6_packet_layers(self):
        ip, src, dst, iface = self._module()
        tcp = TCPHeader(1, 2, flags=SYN)
        pkt = ip.build(src, dst, tcp, ZeroPayload(10))
        assert isinstance(pkt.top(), MyrinetHeader)
        assert pkt.find(IPv6Header).payload_length == tcp.header_len() + 10
        assert pkt.route == [3]
        assert tcp.checksum != 0               # filled during build

    def test_build_v4_sets_identification(self):
        ip, src, dst, iface = self._module(v6=False)
        p1 = ip.build(src, dst, TCPHeader(1, 2), ZeroPayload(0))
        p2 = ip.build(src, dst, TCPHeader(1, 2), ZeroPayload(0))
        assert p1.find(IPv4Header).identification != \
            p2.find(IPv4Header).identification

    def test_mixed_versions_rejected(self):
        ip = IpModule()
        ip.add_route(IPv4Address.from_index(2),
                     RouteEntry(iface=FakeIface(), source_route=[1]))
        with pytest.raises(ConfigError):
            ip.build(IPv6Address.from_index(1), IPv4Address.from_index(2),
                     TCPHeader(1, 2), ZeroPayload(0))

    def test_no_route_raises(self):
        ip = IpModule()
        with pytest.raises(RouteError):
            ip.route_for(IPv6Address.from_index(9))

    def test_mtu_enforced(self):
        ip, src, dst, iface = self._module()
        iface.mtu = 1500
        with pytest.raises(ConfigError):
            ip.build(src, dst, TCPHeader(1, 2), ZeroPayload(4000))

    def test_route_without_framing_rejected(self):
        ip = IpModule()
        dst = IPv6Address.from_index(2)
        ip.add_route(dst, RouteEntry(iface=FakeIface()))  # no MAC, no route
        with pytest.raises(ConfigError):
            ip.build(IPv6Address.from_index(1), dst, TCPHeader(1, 2),
                     ZeroPayload(0))

    def test_parse_rejects_foreign_destination(self):
        ip, src, dst, iface = self._module()
        # Build a packet addressed to someone else and feed it back.
        other = IpModule()
        other.add_route(IPv6Address.from_index(7),
                        RouteEntry(iface=FakeIface(), source_route=[1]))
        pkt = other.build(src, IPv6Address.from_index(7), TCPHeader(1, 2),
                          ZeroPayload(0))
        assert ip.parse(pkt) is None
        assert ip.dropped_not_ours == 1

    def test_parse_roundtrip_v6(self):
        ip, src, dst, iface = self._module()
        back = IpModule()
        back.add_local(dst)
        tcp = TCPHeader(42, 43, seq=7, flags=SYN)
        pkt = ip.build(src, dst, tcp, BytesPayload(b"abc"))
        seg = back.parse(pkt)
        assert seg is not None and seg.checksum_ok
        assert seg.src == Endpoint(src, 42)
        assert seg.dst == Endpoint(dst, 43)
        assert seg.payload.to_bytes() == b"abc"
        assert not seg.ce

    def test_parse_detects_payload_corruption(self):
        ip, src, dst, iface = self._module()
        back = IpModule()
        back.add_local(dst)
        pkt = ip.build(src, dst, TCPHeader(1, 2), BytesPayload(b"data"))
        pkt.payload = BytesPayload(b"dbta")       # bit flip in flight
        seg = back.parse(pkt)
        assert seg is not None and not seg.checksum_ok
        assert back.dropped_bad == 1

    def test_parse_reports_ce(self):
        ip, src, dst, iface = self._module()
        back = IpModule()
        back.add_local(dst)
        pkt = ip.build(src, dst, TCPHeader(1, 2), ZeroPayload(4), ecn=0b10)
        pkt.find(IPv6Header).ecn = 0b11            # switch marked it
        seg = back.parse(pkt)
        assert seg.ce

    def test_udp_parse(self):
        ip, src, dst, iface = self._module()
        back = IpModule()
        back.add_local(dst)
        udp = UDPHeader(5, 6, length=8 + 4)
        pkt = ip.build(src, dst, udp, BytesPayload(b"dgrm"))
        seg = back.parse(pkt)
        assert seg.proto == 17 and seg.checksum_ok


class TestInetStack:
    def test_rst_reply_for_unknown_port(self, sim):
        a = InetStack(sim, name="a")
        b = InetStack(sim, name="b")
        ia, ib = FakeIface(), FakeIface()
        addr_a, addr_b = IPv6Address.from_index(1), IPv6Address.from_index(2)
        a.ip.add_local(addr_a)
        b.ip.add_local(addr_b)
        a.ip.add_route(addr_b, RouteEntry(iface=ia, source_route=[1]))
        b.ip.add_route(addr_a, RouteEntry(iface=ib, source_route=[2]))
        syn = TCPHeader(1000, 4242, seq=5, flags=SYN)
        pkt = a.ip.build(addr_a, addr_b, syn, ZeroPayload(0))
        b.packet_in(pkt)
        assert b.tcp.rst_sent == 1
        assert len(ib.sent) == 1
        rst = ib.sent[0].find(TCPHeader)
        assert rst.flag(0x04)                      # RST
        assert rst.ack == 6                        # SYN occupies one seq

    def test_on_segment_hook_observes_traffic(self, sim):
        a = InetStack(sim, name="a")
        b = InetStack(sim, name="b")
        ia = FakeIface()
        addr_a, addr_b = IPv6Address.from_index(1), IPv6Address.from_index(2)
        a.ip.add_local(addr_a)
        b.ip.add_local(addr_b)
        a.ip.add_route(addr_b, RouteEntry(iface=ia, source_route=[1]))
        seen = []
        b.on_segment = seen.append
        pkt = a.ip.build(addr_a, addr_b, UDPHeader(7, 8, length=8),
                         ZeroPayload(0))
        b.packet_in(pkt)
        assert len(seen) == 1
        assert seen[0].proto == 17


class TestChainPayload:
    def test_concat_keeps_header_plus_bulk_lazy(self):
        combo = concat([BytesPayload(b"H" * 32), ZeroPayload(100_000)])
        assert isinstance(combo, ChainPayload)
        assert combo.length == 100_032

    def test_small_concat_materializes(self):
        combo = concat([BytesPayload(b"ab"), ZeroPayload(10)])
        assert isinstance(combo, BytesPayload)

    def test_to_bytes_matches_parts(self):
        combo = concat([BytesPayload(b"x" * 32), ZeroPayload(5000)])
        assert combo.to_bytes() == b"x" * 32 + bytes(5000)

    def test_csum_matches_materialized(self):
        combo = concat([BytesPayload(bytes(range(64))), ZeroPayload(5000)])
        assert combo.csum() == ones_complement_sum(combo.to_bytes())

    def test_csum_with_odd_interior_part(self):
        parts = [BytesPayload(b"abc"), BytesPayload(b"defgh"),
                 ZeroPayload(5000)]
        combo = ChainPayload(parts)
        assert combo.csum() == ones_complement_sum(combo.to_bytes())

    @settings(max_examples=60, deadline=None)
    @given(prefix=st.binary(min_size=0, max_size=64),
           zeros=st.integers(0, 9000),
           offset=st.integers(0, 100), length=st.integers(0, 9000))
    def test_slice_property(self, prefix, zeros, offset, length):
        parts = [BytesPayload(prefix), ZeroPayload(zeros)]
        combo = ChainPayload(parts)
        reference = prefix + bytes(zeros)
        if offset + length > len(reference):
            with pytest.raises(ValueError):
                combo.slice(offset, length)
        else:
            assert combo.slice(offset, length).to_bytes() == \
                reference[offset:offset + length]

    def test_equality_with_bytes_payload(self):
        combo = ChainPayload([BytesPayload(b"a" * 10), ZeroPayload(5000)])
        assert combo == BytesPayload(b"a" * 10 + bytes(5000))
