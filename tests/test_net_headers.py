"""Tests for addresses, checksums, payloads, and header codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.net.addresses import (Endpoint, FourTuple, IPv4Address,
                                 IPv6Address, MacAddress)
from repro.net.checksum import (checksum, combine, finish,
                                ones_complement_sum, pseudo_header_v4,
                                pseudo_header_v6)
from repro.net.headers import (ACK, DecodeError, EthernetHeader, IPv4Header,
                               IPv6Header, MyrinetHeader, PROTO_TCP, SYN,
                               TCPHeader, UDPHeader, tcp_fill_checksum,
                               tcp_verify_checksum, udp_fill_checksum,
                               udp_verify_checksum)
from repro.net.packet import (BytesPayload, Packet, ZeroPayload, concat)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2
        assert checksum(data) == 0x220D

    def test_odd_length(self):
        assert checksum(b"\x01") == finish(0x0100)

    def test_empty(self):
        assert checksum(b"") == 0xFFFF

    def test_verify_by_including_checksum_field(self):
        data = bytearray(b"\x45\x00\x00\x1c" * 3)
        csum = checksum(bytes(data))
        data += csum.to_bytes(2, "big")
        assert checksum(bytes(data)) == 0

    @settings(max_examples=100, deadline=None)
    @given(a=st.binary(max_size=64), b=st.binary(max_size=64))
    def test_combine_matches_concatenation_even_boundary(self, a, b):
        if len(a) % 2:
            a += b"\x00"
        whole = ones_complement_sum(a + b)
        parts = combine(ones_complement_sum(a), ones_complement_sum(b))
        assert whole == parts

    def test_pseudo_header_widths_checked(self):
        with pytest.raises(ValueError):
            pseudo_header_v6(b"\x00" * 4, b"\x00" * 16, 0, 6)
        with pytest.raises(ValueError):
            pseudo_header_v4(b"\x00" * 16, b"\x00" * 4, 0, 6)


class TestAddresses:
    def test_mac_from_index(self):
        m = MacAddress.from_index(5)
        assert m.packed[0] == 0x02
        assert m == MacAddress.from_index(5)
        assert m != MacAddress.from_index(6)

    def test_broadcast(self):
        assert MacAddress.BROADCAST.is_broadcast
        assert not MacAddress.from_index(1).is_broadcast

    def test_ipv6_parse_repr_roundtrip(self):
        a = IPv6Address.parse("fd00::1")
        assert IPv6Address.parse(repr(a)) == a
        assert len(a.packed) == 16

    def test_ipv4_from_index(self):
        a = IPv4Address.from_index(7)
        assert repr(a) == "10.0.0.7"

    def test_ipv6_from_index_sequential(self):
        assert IPv6Address.from_index(1) != IPv6Address.from_index(2)

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigError):
            IPv6Address(b"\x00" * 4)

    def test_addresses_hashable_and_ordered(self):
        s = {IPv6Address.from_index(i) for i in range(4)}
        assert len(s) == 4
        assert IPv4Address.from_index(1) < IPv4Address.from_index(2)

    def test_endpoint_port_range(self):
        with pytest.raises(ConfigError):
            Endpoint(IPv6Address.from_index(1), 70000)

    def test_four_tuple_reverse(self):
        ft = FourTuple(Endpoint(IPv6Address.from_index(1), 10),
                       Endpoint(IPv6Address.from_index(2), 20))
        assert ft.reversed().reversed() == ft
        assert ft.reversed().local.port == 20


class TestPayloads:
    def test_zero_payload(self):
        p = ZeroPayload(10)
        assert p.to_bytes() == bytes(10)
        assert p.csum() == 0
        assert len(p) == 10

    def test_zero_equals_bytes_of_zeros(self):
        assert ZeroPayload(4) == BytesPayload(bytes(4))
        assert BytesPayload(bytes(4)) == ZeroPayload(4)
        assert ZeroPayload(4) != BytesPayload(b"abcd")

    def test_slice_bounds(self):
        with pytest.raises(ValueError):
            ZeroPayload(5).slice(3, 4)
        with pytest.raises(ValueError):
            BytesPayload(b"abc").slice(-1, 2)

    def test_bytes_slice(self):
        p = BytesPayload(b"hello world")
        assert p.slice(6, 5).to_bytes() == b"world"

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=128))
    def test_csum_matches_direct(self, data):
        assert BytesPayload(data).csum() == ones_complement_sum(data)

    def test_concat(self):
        assert concat([]).length == 0
        z = concat([ZeroPayload(3), ZeroPayload(4)])
        assert isinstance(z, ZeroPayload) and z.length == 7
        m = concat([BytesPayload(b"ab"), ZeroPayload(2)])
        assert m.to_bytes() == b"ab\x00\x00"


class TestPacket:
    def test_push_pop_find(self):
        pkt = Packet()
        ip = IPv6Header(IPv6Address.from_index(1), IPv6Address.from_index(2), 6)
        tcp = TCPHeader(1, 2)
        pkt.push(tcp)
        pkt.push(ip)
        assert pkt.top() is ip
        assert pkt.find(TCPHeader) is tcp
        assert pkt.pop() is ip
        assert pkt.find(IPv6Header) is None

    def test_wire_size(self):
        pkt = Packet(payload=ZeroPayload(100))
        pkt.push(TCPHeader(1, 2))
        pkt.push(IPv6Header(IPv6Address.from_index(1), IPv6Address.from_index(2), 6))
        assert pkt.wire_size == 100 + 20 + 40

    def test_copy_shallow_independent_stack(self):
        pkt = Packet([TCPHeader(1, 2)], ZeroPayload(5))
        pkt.route = [1, 2]
        clone = pkt.copy_shallow()
        clone.pop()
        assert len(pkt.headers) == 1
        assert clone.route == [1, 2]
        assert clone.trace_id != pkt.trace_id

    def test_empty_packet_top_raises(self):
        with pytest.raises(IndexError):
            Packet().top()


class TestLinkHeaders:
    def test_ethernet_roundtrip(self):
        h = EthernetHeader(MacAddress.from_index(1), MacAddress.from_index(2), 0x86DD)
        decoded, used = EthernetHeader.decode(h.encode())
        assert used == 14 == h.header_len()
        assert decoded == h

    def test_ethernet_truncated(self):
        with pytest.raises(DecodeError):
            EthernetHeader.decode(b"\x00" * 10)

    def test_myrinet_roundtrip(self):
        h = MyrinetHeader(route=[3, 1, 4], ptype=0x86DD)
        decoded, used = MyrinetHeader.decode(h.encode())
        assert decoded == h
        assert used == h.header_len() == 6

    def test_myrinet_empty_route(self):
        h = MyrinetHeader(route=[])
        decoded, _ = MyrinetHeader.decode(h.encode())
        assert decoded.route == []

    def test_myrinet_route_limits(self):
        with pytest.raises(DecodeError):
            MyrinetHeader(route=[0] * 33)
        with pytest.raises(DecodeError):
            MyrinetHeader(route=[256])

    @settings(max_examples=50, deadline=None)
    @given(route=st.lists(st.integers(0, 255), max_size=32),
           ptype=st.integers(0, 0xFFFF))
    def test_myrinet_roundtrip_property(self, route, ptype):
        h = MyrinetHeader(route=route, ptype=ptype)
        decoded, used = MyrinetHeader.decode(h.encode() + b"extra")
        assert decoded == h and used == h.header_len()


class TestIPHeaders:
    def _v6(self):
        return IPv6Header(IPv6Address.from_index(1), IPv6Address.from_index(2),
                          next_header=PROTO_TCP, payload_length=123,
                          hop_limit=17, traffic_class=3, flow_label=0xABCDE)

    def test_ipv6_roundtrip(self):
        h = self._v6()
        decoded, used = IPv6Header.decode(h.encode())
        assert used == 40
        assert decoded == h

    def test_ipv6_bad_version(self):
        raw = bytearray(self._v6().encode())
        raw[0] = 0x45
        with pytest.raises(DecodeError):
            IPv6Header.decode(bytes(raw))

    def test_ipv4_roundtrip_and_checksum(self):
        h = IPv4Header(IPv4Address.from_index(1), IPv4Address.from_index(2),
                       protocol=PROTO_TCP, total_length=40, identification=7,
                       ttl=63)
        raw = h.encode()
        assert checksum(raw) == 0  # header checksum validates
        decoded, used = IPv4Header.decode(raw)
        assert used == 20
        assert decoded == h

    def test_ipv4_corrupt_checksum_detected(self):
        h = IPv4Header(IPv4Address.from_index(1), IPv4Address.from_index(2),
                       protocol=PROTO_TCP)
        raw = bytearray(h.encode())
        raw[8] ^= 0xFF  # mangle TTL
        with pytest.raises(DecodeError):
            IPv4Header.decode(bytes(raw))

    @settings(max_examples=50, deadline=None)
    @given(ident=st.integers(0, 0xFFFF), ttl=st.integers(1, 255),
           proto=st.integers(0, 255), length=st.integers(20, 0xFFFF))
    def test_ipv4_roundtrip_property(self, ident, ttl, proto, length):
        h = IPv4Header(IPv4Address.from_index(1), IPv4Address.from_index(2),
                       protocol=proto, total_length=length,
                       identification=ident, ttl=ttl)
        decoded, _ = IPv4Header.decode(h.encode())
        assert decoded == h


class TestTransportHeaders:
    def test_udp_roundtrip(self):
        h = UDPHeader(1234, 80, length=100, checksum=0xBEEF)
        decoded, used = UDPHeader.decode(h.encode())
        assert used == 8
        assert decoded == h

    def test_udp_checksum_fill_and_verify(self):
        src = IPv6Address.from_index(1)
        dst = IPv6Address.from_index(2)
        payload = BytesPayload(b"datagram!")
        h = UDPHeader(5, 6, length=8 + payload.length)
        ps = pseudo_header_v6(src.packed, dst.packed, h.length, 17)
        udp_fill_checksum(h, ps, payload)
        assert h.checksum != 0
        assert udp_verify_checksum(h, ps, payload)
        assert not udp_verify_checksum(h, ps, BytesPayload(b"datagraM!"))

    def test_tcp_roundtrip_no_options(self):
        h = TCPHeader(1000, 2000, seq=0xDEADBEEF, ack=0x12345678,
                      flags=SYN | ACK, window=0x7000, urgent=0)
        decoded, used = TCPHeader.decode(h.encode())
        assert used == 20
        assert decoded == h

    def test_tcp_options_roundtrip(self):
        h = TCPHeader(1, 2, seq=1, flags=SYN, mss=8960, wscale=4,
                      sack_permitted=True, ts_val=111, ts_ecr=222)
        raw = h.encode()
        assert len(raw) % 4 == 0
        decoded, used = TCPHeader.decode(raw)
        assert used == len(raw) == h.header_len()
        assert decoded.mss == 8960
        assert decoded.wscale == 4
        assert decoded.sack_permitted
        assert decoded.ts_val == 111 and decoded.ts_ecr == 222

    def test_tcp_timestamp_only(self):
        h = TCPHeader(1, 2, flags=ACK, ts_val=99, ts_ecr=98)
        decoded, _ = TCPHeader.decode(h.encode())
        assert decoded.ts_val == 99
        assert decoded.mss is None and decoded.wscale is None

    def test_tcp_unknown_option_skipped(self):
        base = TCPHeader(1, 2).encode()
        # Hand-craft options: kind=254 len=4 + 2 pad NOPs, data offset 6.
        raw = bytearray(base + bytes([254, 4, 0, 0]))
        raw[12] = (6 << 4)
        decoded, used = TCPHeader.decode(bytes(raw))
        assert used == 24

    def test_tcp_bad_offset(self):
        raw = bytearray(TCPHeader(1, 2).encode())
        raw[12] = (4 << 4)  # offset < 5
        with pytest.raises(DecodeError):
            TCPHeader.decode(bytes(raw))

    def test_tcp_truncated_option(self):
        base = TCPHeader(1, 2).encode()
        raw = bytearray(base + bytes([2, 44, 0, 0]))  # MSS opt with absurd len
        raw[12] = (6 << 4)
        with pytest.raises(DecodeError):
            TCPHeader.decode(bytes(raw))

    def test_tcp_checksum_fill_verify_zero_payload(self):
        src = IPv6Address.from_index(1)
        dst = IPv6Address.from_index(2)
        payload = ZeroPayload(1000)
        h = TCPHeader(5, 6, seq=77, flags=ACK)
        ps = pseudo_header_v6(src.packed, dst.packed,
                              h.header_len() + payload.length, 6)
        tcp_fill_checksum(h, ps, payload)
        assert tcp_verify_checksum(h, ps, payload)
        # Same bytes as a real zero buffer.
        assert tcp_verify_checksum(h, ps, BytesPayload(bytes(1000)))

    def test_tcp_checksum_detects_header_corruption(self):
        src = IPv6Address.from_index(1)
        dst = IPv6Address.from_index(2)
        h = TCPHeader(5, 6, seq=77, flags=ACK)
        ps = pseudo_header_v6(src.packed, dst.packed, h.header_len(), 6)
        tcp_fill_checksum(h, ps, ZeroPayload(0))
        h.seq = 78
        assert not tcp_verify_checksum(h, ps, ZeroPayload(0))

    def test_flag_str(self):
        assert TCPHeader(1, 2, flags=SYN | ACK).flag_str() == "SA"
        assert TCPHeader(1, 2).flag_str() == "."

    @settings(max_examples=100, deadline=None)
    @given(seq=st.integers(0, 0xFFFFFFFF), ack=st.integers(0, 0xFFFFFFFF),
           flags=st.integers(0, 0x3F), window=st.integers(0, 0xFFFF),
           mss=st.one_of(st.none(), st.integers(0, 0xFFFF)),
           wscale=st.one_of(st.none(), st.integers(0, 14)),
           ts=st.one_of(st.none(), st.tuples(st.integers(0, 0xFFFFFFFF),
                                             st.integers(0, 0xFFFFFFFF))))
    def test_tcp_roundtrip_property(self, seq, ack, flags, window, mss, wscale, ts):
        h = TCPHeader(1, 2, seq=seq, ack=ack, flags=flags, window=window,
                      mss=mss, wscale=wscale,
                      ts_val=ts[0] if ts else None,
                      ts_ecr=ts[1] if ts else None)
        decoded, used = TCPHeader.decode(h.encode())
        assert used == h.header_len()
        assert (decoded.seq, decoded.ack, decoded.flags, decoded.window) == \
            (seq, ack, flags, window)
        assert decoded.mss == mss
        assert decoded.wscale == wscale
        if ts:
            assert (decoded.ts_val, decoded.ts_ecr) == ts
        else:
            assert decoded.ts_val is None
