"""ECN + RED extension tests (paper §5.2: inter-network protocols bring
"network-based mechanisms such as RED or ECN" to the SAN).
"""

import dataclasses

import pytest

from repro.fabric import RedParams
from repro.hw import DumbNic, Host
from repro.hoststack import TcpSocket
from repro.hoststack.kernel import HostKernel
from repro.fabric.switch import EthernetSwitch
from repro.fabric.link import Link
from repro.net.addresses import Endpoint, IPv4Address, MacAddress
from repro.net.headers.ip import ECN_CE, ECN_ECT0
from repro.net.headers.transport import CWR, ECE
from repro.net.packet import ZeroPayload
from repro.net.tcp import TcpConfig
from repro.sim import Simulator

from helpers_tcp import make_pair, establish


@pytest.fixture
def sim():
    return Simulator()


def ecn_cfg(**kw):
    kw.setdefault("ecn", True)
    kw.setdefault("mss", 1000)
    return TcpConfig(**kw)


class TestEcnNegotiation:
    def test_both_sides_ecn_capable(self, sim):
        cctx, sctx = make_pair(sim, ecn_cfg(), ecn_cfg())
        establish(sim, cctx, sctx)
        assert cctx.conn.ecn_ok and sctx.conn.ecn_ok
        # ECN-setup SYN carried ECE|CWR; SYN|ACK carried ECE only.
        syn = cctx.sent[0][1]
        assert syn.flag(ECE) and syn.flag(CWR)
        synack = sctx.sent[0][1]
        assert synack.flag(ECE) and not synack.flag(CWR)

    def test_one_side_without_ecn_disables_it(self, sim):
        cctx, sctx = make_pair(sim, ecn_cfg(), TcpConfig(mss=1000))
        establish(sim, cctx, sctx)
        assert not cctx.conn.ecn_ok and not sctx.conn.ecn_ok

    def test_legacy_peer_unaffected(self, sim):
        # A non-ECN client against an ECN-capable server.
        cctx, sctx = make_pair(sim, TcpConfig(mss=1000), ecn_cfg())
        establish(sim, cctx, sctx)
        assert not sctx.conn.ecn_ok
        cctx.conn.send_stream(ZeroPayload(5000))
        sim.run(until=sim.now + 1_000_000)
        assert sctx.delivered_bytes == bytes(5000)


class TestEcnResponse:
    def test_ce_mark_triggers_window_reduction_without_loss(self, sim):
        cctx, sctx = make_pair(sim, ecn_cfg(), ecn_cfg())
        establish(sim, cctx, sctx)
        # Grow the window first.
        cctx.conn.send_stream(ZeroPayload(20_000))
        sim.run(until=sim.now + 1_000_000)
        cwnd_before = cctx.conn.cc.cwnd

        # Deliver one CE-marked data segment to the server by hand.
        orig_rx = sctx._rx

        def rx_with_ce(hdr, payload):
            sctx.received.append((sim.now, hdr, payload.length))
            sctx.conn.handle_segment(hdr, payload, ce=payload.length > 0)

        sctx._rx = rx_with_ce
        cctx.conn.send_stream(ZeroPayload(3000))
        sim.run(until=sim.now + 1_000_000)
        sctx._rx = orig_rx

        # The sender saw ECE and halved, exactly once, without retransmits.
        assert cctx.conn.cc.ecn_reductions == 1
        assert cctx.conn.cc.cwnd < cwnd_before
        assert cctx.conn.stats.retransmitted_segs == 0

        # The receiver echoes ECE until data carrying CWR arrives.
        assert sctx.conn._ecn_echo
        cctx.conn.send_stream(ZeroPayload(5000))
        sim.run(until=sim.now + 2_000_000)
        cwr_segs = [h for _, h, l in cctx.sent if h.flag(CWR) and l > 0]
        assert len(cwr_segs) >= 1
        assert not sctx.conn._ecn_echo
        assert len(sctx.delivered_bytes) == 28_000

    def test_single_reduction_per_window(self, sim):
        cctx, sctx = make_pair(sim, ecn_cfg(), ecn_cfg())
        establish(sim, cctx, sctx)
        orig_rx = sctx._rx

        def rx_all_ce(hdr, payload):
            sctx.conn.handle_segment(hdr, payload, ce=payload.length > 0)

        sctx._rx = rx_all_ce
        cctx.conn.send_stream(ZeroPayload(8000))   # many CE-marked segments
        sim.run(until=sim.now + 2_000_000)
        sctx._rx = orig_rx
        # Several ECE acks, but at most ~one reduction per window of data
        # (congestion persisted across ~4 windows of 8000 bytes).
        assert 1 <= cctx.conn.cc.ecn_reductions <= 6


class TestRedQueue:
    def _congested_rig(self, sim, red):
        """Two senders funneled into one 125 B/µs egress port."""
        sw = EthernetSwitch(sim, 3, latency=1.0, queue_capacity=64, red=red)
        hosts = []
        for i in range(3):
            host = Host(sim, f"h{i}")
            kernel = HostKernel(sim, host, isn_seed=i)
            nic = DumbNic(sim, host, mtu=1500, name="eth0",
                          mac=MacAddress.from_index(i))
            addr = IPv4Address.from_index(i + 1)
            kernel.add_nic(nic, addr)
            Link(sim, nic.attachment, sw.port(i), bandwidth=125.0,
                 propagation=0.5)
            hosts.append((host, kernel, nic, addr))
        for i, (host, kernel, nic, addr) in enumerate(hosts):
            for j, (_h2, _k2, nic2, addr2) in enumerate(hosts):
                if i != j:
                    kernel.add_route(addr2, nic, next_mac=nic2.mac)
        return sw, hosts

    def _blast(self, sim, hosts, ecn: bool, nbytes=400_000):
        """Hosts 0 and 2 both stream to host 1."""
        cfg = TcpConfig(mss=1460, ecn=ecn)
        (h0, k0, n0, a0), (h1, k1, n1, a1), (h2, k2, n2, a2) = hosts
        received = {}

        def server(port):
            lsock = TcpSocket(k1, a1, config=cfg)
            lsock.listen(port)
            conn = yield from lsock.accept()
            got = 0
            while got < nbytes:
                data = yield from conn.recv(1 << 20)
                if data.length == 0:
                    break
                got += data.length
            received[port] = got

        def client(kernel, addr, port):
            sock = TcpSocket(kernel, addr, config=cfg)
            yield from sock.connect(Endpoint(a1, port))
            yield from sock.send(ZeroPayload(nbytes))

        procs = [sim.process(server(5001)), sim.process(server(5002)),
                 sim.process(client(k0, a0, 5001)),
                 sim.process(client(k2, a2, 5002))]
        sim.run(until=sim.now + 120_000_000)
        for p in procs:
            assert p.triggered, "congestion run did not finish"
            if not p.ok:
                raise p.value
        return received

    def test_red_marks_ecn_flows_instead_of_dropping(self, sim):
        sw, hosts = self._congested_rig(sim, RedParams())
        received = self._blast(sim, hosts, ecn=True)
        assert all(v == 400_000 for v in received.values())
        assert sw.red_marked > 0
        assert sw.red_dropped == 0          # every packet was ECT
        # Senders reacted to marks, not losses.
        total_retx = 0
        for _h, kernel, _n, _a in hosts:
            for conn in kernel.stack.tcp.connections.values():
                total_retx += conn.stats.retransmitted_segs
        assert total_retx == 0

    def test_red_drops_non_ecn_flows(self, sim):
        sw, hosts = self._congested_rig(sim, RedParams())
        received = self._blast(sim, hosts, ecn=False)
        assert all(v == 400_000 for v in received.values())
        assert sw.red_dropped > 0
        assert sw.red_marked == 0
        total_retx = 0
        for _h, kernel, _n, _a in hosts:
            for conn in kernel.stack.tcp.connections.values():
                total_retx += conn.stats.retransmitted_segs
        assert total_retx > 0               # drops forced retransmissions

    def test_red_keeps_queues_shorter_than_taildrop(self, sim):
        sw_red, hosts = self._congested_rig(sim, RedParams())
        self._blast(sim, hosts, ecn=True, nbytes=200_000)
        sim2 = Simulator()
        sw_tail, hosts2 = TestRedQueue._congested_rig(self, sim2, None)
        self._blast(sim2, hosts2, ecn=True, nbytes=200_000)
        # With no RED, nothing marks; with RED, ECN flows got marked.
        assert sw_red.red_marked > 0
        assert sw_tail.red_marked == 0
