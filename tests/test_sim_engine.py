"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Event, Interrupt, SimulationError,
                       Simulator)


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_call_later_runs_in_time_order(self, sim):
        order = []
        sim.call_later(5, order.append, "b")
        sim.call_later(1, order.append, "a")
        sim.call_later(9, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9

    def test_ties_broken_in_submission_order(self, sim):
        order = []
        for tag in range(10):
            sim.call_later(3.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_cancelled_callback_does_not_run(self, sim):
        hits = []
        handle = sim.call_later(2, hits.append, 1)
        handle.cancel()
        sim.run()
        assert hits == []

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1, lambda: None)

    def test_run_until_stops_clock_exactly(self, sim):
        sim.call_later(100, lambda: None)
        sim.run(until=40)
        assert sim.now == 40

    def test_run_until_with_empty_heap_advances_clock(self, sim):
        sim.run(until=77)
        assert sim.now == 77

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.call_later(3, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.call_later(2, outer)
        sim.run()
        assert seen == [("outer", 2), ("inner", 5)]

    def test_max_events_budget(self, sim):
        def respawn():
            sim.call_later(1, respawn)

        sim.call_later(1, respawn)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.call_later(4, lambda: None)
        assert sim.peek() == 4


class TestEvents:
    def test_succeed_value_delivered(self, sim):
        ev = sim.event()
        got = []
        ev.callbacks.append(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_crashes_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            sim.run()

    def test_defused_failure_does_not_crash(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()

    def test_timeout_value(self, sim):
        results = []

        def proc():
            v = yield sim.timeout(5, value="hello")
            results.append((sim.now, v))

        sim.process(proc())
        sim.run()
        assert results == [(5, "hello")]


class TestProcesses:
    def test_sequential_timeouts(self, sim):
        log = []

        def proc():
            yield sim.timeout(10)
            log.append(sim.now)
            yield sim.timeout(5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [10, 15]

    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_process_waits_on_event(self, sim):
        ev = sim.event()
        log = []

        def waiter():
            val = yield ev
            log.append((sim.now, val))

        sim.process(waiter())
        sim.call_later(30, ev.succeed, "sig")
        sim.run()
        assert log == [(30, "sig")]

    def test_two_processes_interleave(self, sim):
        log = []

        def ticker(tag, period):
            for _ in range(3):
                yield sim.timeout(period)
                log.append((tag, sim.now))

        sim.process(ticker("a", 2))
        sim.process(ticker("b", 3))
        sim.run()
        # At t=6 both fire; b's timeout was scheduled earlier (at t=3) so it
        # wins the tie-break.
        assert log == [("a", 2), ("b", 3), ("a", 4), ("b", 6), ("a", 6), ("b", 9)]

    def test_process_exception_propagates(self, sim):
        def bad():
            yield sim.timeout(1)
            raise RuntimeError("kaput")

        sim.process(bad())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(proc())
        sim.call_later(2, lambda: ev.fail(ValueError("inner")))
        sim.run()
        assert caught == ["inner"]

    def test_wait_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        log = []

        def proc():
            yield sim.timeout(10)
            v = yield ev  # processed long ago
            log.append((sim.now, v))

        sim.process(proc())
        sim.run()
        assert log == [(10, "early")]

    def test_yielding_non_event_raises_in_process(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(7)
            return "child-val"

        log = []

        def parent():
            v = yield sim.process(child())
            log.append((sim.now, v))

        sim.process(parent())
        sim.run()
        assert log == [(7, "child-val")]

    def test_run_process_helper_raises_process_error(self, sim):
        def bad():
            yield sim.timeout(1)
            raise KeyError("x")

        with pytest.raises(KeyError):
            sim.run_process(bad())


class TestInterrupts:
    def test_interrupt_while_sleeping(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        proc = sim.process(sleeper())
        sim.call_later(10, proc.interrupt, "wake")
        sim.run()
        assert log == [(10, "wake")]

    def test_interrupt_before_first_run(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                log.append(sim.now)
                return
            log.append("not interrupted")

        proc = sim.process(sleeper())
        proc.interrupt()
        sim.run()
        assert log == [0]

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def worker():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            log.append(sim.now)

        proc = sim.process(worker())
        sim.call_later(20, proc.interrupt)
        sim.run()
        assert log == [25]


class TestConditions:
    def test_any_of(self, sim):
        log = []

        def proc():
            t1 = sim.timeout(5, value="fast")
            t2 = sim.timeout(50, value="slow")
            done = yield sim.any_of([t1, t2])
            log.append((sim.now, list(done.values())))

        sim.process(proc())
        sim.run()
        assert log[0][0] == 5
        assert log[0][1] == ["fast"]

    def test_all_of(self, sim):
        log = []

        def proc():
            t1 = sim.timeout(5)
            t2 = sim.timeout(50)
            yield sim.all_of([t1, t2])
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [50]

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc()) == 0.0


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build_and_run():
            s = Simulator()
            log = []

            def proc(tag):
                for i in range(5):
                    yield s.timeout(1.5 * (tag + 1))
                    log.append((tag, s.now, i))

            for t in range(4):
                s.process(proc(t))
            s.run()
            return log

        assert build_and_run() == build_and_run()


class TestConditionFailures:
    def test_all_of_propagates_child_failure(self, sim):
        bad = sim.event()
        good = sim.timeout(10)
        caught = []

        def proc():
            try:
                yield sim.all_of([good, bad])
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(proc())
        sim.call_later(5, lambda: bad.fail(ValueError("child died")))
        sim.run()
        assert caught == ["child died"]

    def test_any_of_propagates_first_failure(self, sim):
        bad = sim.event()
        slow = sim.timeout(50)
        caught = []

        def proc():
            try:
                yield sim.any_of([slow, bad])
            except ValueError:
                caught.append(sim.now)

        sim.process(proc())
        sim.call_later(5, lambda: bad.fail(ValueError("x")))
        sim.run()
        assert caught == [5]

    def test_any_of_with_pre_processed_child(self, sim):
        early = sim.event()
        early.succeed("pre")

        def proc():
            yield sim.timeout(3)
            done = yield sim.any_of([early, sim.timeout(100)])
            return list(done.values())

        assert sim.run_process(proc(), until=50) == ["pre"]


class TestRunProcessEdges:
    def test_run_process_unfinished_raises(self, sim):
        def forever():
            while True:
                yield sim.timeout(10)

        with pytest.raises(SimulationError):
            sim.run_process(forever(), until=35)

    def test_cross_simulator_event_rejected(self, sim):
        other = Simulator()
        foreign = other.event()

        def proc():
            yield foreign

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deep_process_chain(self, sim):
        def leaf(n):
            yield sim.timeout(1)
            return n * 2

        def mid(n):
            v = yield sim.process(leaf(n))
            return v + 1

        def top():
            total = 0
            for i in range(5):
                total += yield sim.process(mid(i))
            return total

        # sum of (2i + 1) for i in 0..4 = 25
        assert sim.run_process(top()) == 25
