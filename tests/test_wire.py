"""Whole-packet wire serialization: the object fast-path and the byte
representation must agree, end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, IPv6Address, MacAddress
from repro.net.headers.base import DecodeError
from repro.net.headers.ip import IPv4Header, IPv6Header
from repro.net.headers.link import EthernetHeader, MyrinetHeader
from repro.net.headers.transport import ACK, SYN, TCPHeader, UDPHeader
from repro.net.ip import IpModule, RouteEntry
from repro.net.packet import BytesPayload, Packet, ZeroPayload
from repro.net.wire import deserialize, pcap_text, serialize


class FakeIface:
    mtu = 16384
    mac = MacAddress.from_index(3)

    def enqueue_tx(self, pkt):
        pass


def build_v6_tcp(payload=b"hello", route=(2, 5)):
    ip = IpModule()
    src, dst = IPv6Address.from_index(1), IPv6Address.from_index(2)
    ip.add_route(dst, RouteEntry(iface=FakeIface(), source_route=list(route)))
    tcp = TCPHeader(4000, 5000, seq=1000, ack=2000, flags=ACK, window=512,
                    ts_val=7, ts_ecr=8)
    return ip.build(src, dst, tcp, BytesPayload(payload))


def build_v4_udp(payload=b"dgram"):
    ip = IpModule()
    src, dst = IPv4Address.from_index(1), IPv4Address.from_index(2)
    ip.add_route(dst, RouteEntry(iface=FakeIface(),
                                 next_mac=MacAddress.from_index(9)))
    udp = UDPHeader(111, 222, length=8 + len(payload))
    return ip.build(src, dst, udp, BytesPayload(payload))


class TestRoundTrip:
    def test_myrinet_ipv6_tcp(self):
        pkt = build_v6_tcp()
        raw = serialize(pkt)
        assert len(raw) == pkt.wire_size
        back = deserialize(raw)
        assert back.find(MyrinetHeader).route == [2, 5]
        assert back.route == [2, 5]
        tcp = back.find(TCPHeader)
        assert (tcp.seq, tcp.ack, tcp.window) == (1000, 2000, 512)
        assert (tcp.ts_val, tcp.ts_ecr) == (7, 8)
        assert back.payload.to_bytes() == b"hello"

    def test_ethernet_ipv4_udp(self):
        pkt = build_v4_udp()
        raw = serialize(pkt)
        back = deserialize(raw)
        assert back.find(EthernetHeader) is not None
        udp = back.find(UDPHeader)
        assert (udp.src_port, udp.dst_port) == (111, 222)
        assert back.payload.to_bytes() == b"dgram"

    def test_bare_ip_framing(self):
        pkt = build_v6_tcp()
        pkt.pop()    # strip the Myrinet header
        raw = serialize(pkt)
        back = deserialize(raw, link="none")
        assert back.find(IPv6Header) is not None
        # Auto-detect also lands on bare IP.
        assert deserialize(raw).find(IPv6Header) is not None

    def test_checksums_survive_the_wire(self):
        from repro.net.ip import IpModule as M
        pkt = build_v6_tcp(payload=b"checksummed payload")
        back = deserialize(serialize(pkt))
        receiver = M()
        receiver.add_local(IPv6Address.from_index(2))
        seg = receiver.parse(back)
        assert seg is not None and seg.checksum_ok

    def test_bit_flip_detected_after_wire(self):
        pkt = build_v6_tcp(payload=b"checksummed payload")
        raw = bytearray(serialize(pkt))
        raw[-3] ^= 0x40                 # corrupt the payload
        back = deserialize(bytes(raw))
        from repro.net.ip import IpModule as M
        receiver = M()
        receiver.add_local(IPv6Address.from_index(2))
        seg = receiver.parse(back)
        assert seg is not None and not seg.checksum_ok

    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(max_size=512),
           seq=st.integers(0, 0xFFFFFFFF),
           flags=st.integers(0, 0xFF),
           route=st.lists(st.integers(0, 31), max_size=6))
    def test_roundtrip_property(self, payload, seq, flags, route):
        ip = IpModule()
        src, dst = IPv6Address.from_index(1), IPv6Address.from_index(2)
        ip.add_route(dst, RouteEntry(iface=FakeIface(),
                                     source_route=list(route) or [0]))
        tcp = TCPHeader(1, 2, seq=seq, flags=flags | ACK)
        pkt = ip.build(src, dst, tcp, BytesPayload(payload))
        back = deserialize(serialize(pkt))
        assert back.payload.to_bytes() == payload
        assert back.find(TCPHeader).seq == seq


class TestRobustness:
    def test_truncated_raises(self):
        raw = serialize(build_v6_tcp())
        with pytest.raises(DecodeError):
            deserialize(raw[:30])

    def test_empty_raises(self):
        with pytest.raises(DecodeError):
            deserialize(b"", link="none")

    def test_garbage_protocol_raises(self):
        pkt = build_v6_tcp()
        pkt.find(IPv6Header).next_header = 99
        with pytest.raises(DecodeError):
            deserialize(serialize(pkt))

    @settings(max_examples=200, deadline=None)
    @given(junk=st.binary(max_size=120))
    def test_arbitrary_bytes_never_crash(self, junk):
        """Fuzz: deserialization either parses or raises DecodeError —
        never an unhandled exception."""
        try:
            deserialize(junk)
        except DecodeError:
            pass


class TestPcapText:
    def test_dump_contains_summary_and_hex(self):
        pkt = build_v6_tcp()
        text = pcap_text(pkt, now=42.0)
        assert "fd00::1" in text
        assert "0x0000:" in text
        # Hex body length matches the wire size.
        hex_bytes = sum(len(l.split(":")[1].split())
                        for l in text.splitlines() if ":" in l and "0x" in l)
        assert hex_bytes == pkt.wire_size
