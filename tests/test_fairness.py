"""Multi-flow behaviour: two QPIP streams share the interface and the
wire fairly; Reno flows converge under a shared bottleneck."""

import pytest

from repro.bench.configs import build_qpip_cluster
from repro.core import QPTransport, WROpcode
from repro.net.addresses import Endpoint
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def _stream(sim, src, dst, port, total, done, tag, chunk=16 * 1024):
    """One unidirectional QP stream; records finish time in done[tag]."""

    def server():
        iface = dst.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, max_recv_wr=64)
        bufs = []
        for _ in range(16):
            buf = yield from iface.register_memory(chunk)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from iface.listen(port)
        yield from iface.accept(listener, qp)
        got = 0
        ring = 0
        while got < total:
            cqes = yield from iface.wait(cq)
            for cqe in cqes:
                if cqe.opcode is WROpcode.RECV:
                    got += cqe.byte_len
                    yield from iface.post_recv(qp, [bufs[ring].sge()])
                    ring = (ring + 1) % len(bufs)
        done[tag] = sim.now

    def client():
        iface = src.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, max_send_wr=32)
        sbuf = yield from iface.register_memory(chunk)
        yield sim.timeout(1000)
        yield from iface.connect(qp, Endpoint(dst.addr, port))
        ep = src.firmware.endpoints[qp.qp_num]
        max_msg = ep.conn.max_message
        sent = 0
        inflight = 0
        while sent < total or inflight > 0:
            while sent < total and inflight < 8:
                n = min(chunk, max_msg, total - sent)
                yield from iface.post_send(qp, [sbuf.sge(0, n)])
                sent += n
                inflight += 1
            cqes = yield from iface.wait(cq)
            inflight -= len(cqes)

    return [server(), client()]


class TestSharedReceiverFairness:
    def test_two_senders_one_receiver_finish_together(self, sim):
        """Two hosts stream the same amount into one receiver NIC: its
        firmware round-robins, so neither flow starves and completion
        times are close."""
        nodes, _fabric = build_qpip_cluster(sim, 3)
        total = 2 * 1024 * 1024
        done = {}
        gens = _stream(sim, nodes[1], nodes[0], 9001, total, done, "f1") \
            + _stream(sim, nodes[2], nodes[0], 9002, total, done, "f2")
        procs = [sim.process(g) for g in gens]
        sim.run(until=sim.now + 300_000_000)
        assert all(p.triggered and p.ok for p in procs)
        t1, t2 = done["f1"], done["f2"]
        assert abs(t1 - t2) < 0.25 * max(t1, t2)

    def test_one_sender_two_destinations_shares_the_nic(self, sim):
        """One sender NIC feeding two receivers: both make progress and
        aggregate goodput roughly matches the single-flow interface
        capacity (the NIC is the shared bottleneck)."""
        nodes, _fabric = build_qpip_cluster(sim, 3)
        total = 2 * 1024 * 1024
        done = {}
        t0 = sim.now
        gens = _stream(sim, nodes[0], nodes[1], 9001, total, done, "d1") \
            + _stream(sim, nodes[0], nodes[2], 9002, total, done, "d2")
        procs = [sim.process(g) for g in gens]
        sim.run(until=sim.now + 300_000_000)
        assert all(p.triggered and p.ok for p in procs)
        elapsed = max(done.values()) - t0
        aggregate_mbps = (2 * total) / elapsed * 1e6 / (1 << 20)
        # Single-flow QPIP does ~80 MB/s; two flows on one NIC share it.
        assert 55 <= aggregate_mbps <= 95
        assert abs(done["d1"] - done["d2"]) < 0.25 * elapsed

    def test_background_flow_does_not_stall_latency_flow(self, sim):
        """A bulk stream and a ping-pong share a sender NIC: the
        ping-pong RTT degrades but stays bounded (round-robin service,
        not FIFO starvation)."""
        nodes, _fabric = build_qpip_cluster(sim, 3)
        done = {}
        bulk = _stream(sim, nodes[0], nodes[1], 9001, 4 * 1024 * 1024,
                       done, "bulk")
        rtts = []

        def pong_server():
            iface = nodes[2].iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            bufs = []
            for _ in range(4):
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            sbuf = yield from iface.register_memory(4096)
            listener = yield from iface.listen(9100)
            yield from iface.accept(listener, qp)
            ring = 0
            for _ in range(30):
                got = False
                while not got:
                    cqes = yield from iface.spin(cq)
                    for cqe in cqes:
                        if cqe.opcode is WROpcode.RECV:
                            got = True
                yield from iface.post_send(qp, [sbuf.sge(0, 1)])
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)

        def pong_client():
            iface = nodes[0].iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            bufs = []
            for _ in range(4):
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            sbuf = yield from iface.register_memory(4096)
            yield sim.timeout(2000)
            yield from iface.connect(qp, Endpoint(nodes[2].addr, 9100))
            ring = 0
            for _ in range(30):
                t0 = sim.now
                yield from iface.post_send(qp, [sbuf.sge(0, 1)])
                got = False
                while not got:
                    cqes = yield from iface.spin(cq)
                    for cqe in cqes:
                        if cqe.opcode is WROpcode.RECV:
                            got = True
                rtts.append(sim.now - t0)
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)

        procs = [sim.process(g) for g in bulk] + [
            sim.process(pong_server()), sim.process(pong_client())]
        sim.run(until=sim.now + 300_000_000)
        assert all(p.triggered and p.ok for p in procs)
        mean_rtt = sum(rtts) / len(rtts)
        # Degraded vs the ~114 µs idle RTT, but bounded: the bulk flow's
        # 16 KB messages hold the NIC for ~150 µs each at most a few
        # times per round trip.
        assert mean_rtt < 1_200
        assert max(rtts) < 3_000
