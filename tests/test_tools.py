"""Tests for the diagnostics tooling (wiretap, inspectors)."""

import pytest

from repro.bench.configs import build_gige_pair, build_qpip_pair
from repro.core import QPTransport
from repro.hoststack import TcpSocket
from repro.net.addresses import Endpoint, IPv6Address
from repro.net.headers.ip import IPv6Header
from repro.net.headers.transport import SYN, TCPHeader, UDPHeader
from repro.net.packet import Packet, ZeroPayload
from repro.sim import Simulator
from repro.tools import (Wiretap, connection_report, fabric_report,
                         format_packet, nic_report)


@pytest.fixture
def sim():
    return Simulator()


class TestFormatPacket:
    def _ip6(self):
        return IPv6Header(IPv6Address.from_index(1), IPv6Address.from_index(2), 6)

    def test_tcp_line(self):
        pkt = Packet([self._ip6(),
                      TCPHeader(1000, 2000, seq=5, ack=9, flags=SYN,
                                window=100, mss=1460)],
                     ZeroPayload(0))
        line = format_packet(pkt, now=12.5)
        assert "fd00::1.1000 > fd00::2.2000" in line
        assert "Flags [S]" in line
        assert "mss 1460" in line
        assert "length 0" in line

    def test_tcp_data_seq_range(self):
        pkt = Packet([self._ip6(), TCPHeader(1, 2, seq=100)], ZeroPayload(50))
        assert "seq 100:150" in format_packet(pkt)

    def test_udp_line(self):
        pkt = Packet([self._ip6(), UDPHeader(7, 8, length=28)], ZeroPayload(20))
        assert "UDP, length 20" in format_packet(pkt)

    def test_ce_mark_shown(self):
        ip = self._ip6()
        ip.ecn = 0b11
        pkt = Packet([ip, TCPHeader(1, 2)], ZeroPayload(0))
        assert "[CE]" in format_packet(pkt)

    def test_non_ip_frame(self):
        assert "non-IP" in format_packet(Packet(payload=ZeroPayload(10)))


class TestWiretapOnQpip:
    def test_captures_handshake_and_data(self, sim):
        a, b, _f = build_qpip_pair(sim)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(a.nic)

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            yield from iface.wait(cq)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            yield from iface.post_send(qp, [buf.sge(0, 100)])
            yield from iface.wait(cq)

        sp, cp = sim.process(server()), sim.process(client())
        sim.run(until=10_000_000)
        assert cp.triggered and cp.ok

        # SYN out, SYN|ACK in, plus the data segment.
        assert tap.count_flag(SYN) >= 2
        tx_lines = tap.lines("tx")
        assert any("Flags [S]" in l for l in tx_lines)
        assert any("length 100" in l for l in tx_lines)
        assert tap.retransmissions() == 0
        assert len(tap.dump(limit=5).splitlines()) <= 6

    def test_filter_and_capacity(self, sim):
        a, b, _f = build_qpip_pair(sim)
        tap = Wiretap(sim, capacity=2)
        tap.filter = lambda pkt: pkt.payload.length > 0   # data only
        tap.attach_qpip_nic(a.nic)

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq, max_recv_wr=32)
            bufs = []
            for _ in range(8):
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            got = 0
            while got < 4:
                got += len((yield from iface.wait(cq)))

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            for _ in range(4):
                yield from iface.post_send(qp, [buf.sge(0, 10)])
            done = 0
            while done < 4:
                done += len((yield from iface.wait(cq)))

        sp, cp = sim.process(server()), sim.process(client())
        sim.run(until=10_000_000)
        assert cp.triggered and cp.ok
        assert len(tap) == 2                  # capacity bound
        assert tap.dropped_records >= 2       # the rest were counted
        assert all(r.packet.payload.length > 0 for r in tap.records)


class TestWiretapOnSockets:
    def test_captures_gige_traffic(self, sim):
        a, b, fabric = build_gige_pair(sim)
        tap = Wiretap(sim)
        tap.attach_dumb_nic(a.nic)

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            yield from conn.recv_exact(1000)

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(ZeroPayload(1000))

        sp, cp = sim.process(server()), sim.process(client())
        sim.run(until=10_000_000)
        assert cp.triggered and cp.ok
        assert len(tap.lines("tx")) >= 2
        assert len(tap.lines("rx")) >= 1      # SYN|ACK and ACKs came back


class TestInspectors:
    def test_connection_report_fields(self, sim):
        from helpers_tcp import establish, make_pair
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(5000))
        sim.run(until=sim.now + 1_000_000)
        report = connection_report(cctx.conn)
        assert "ESTABLISHED" in report
        assert "cwnd=" in report
        assert "srtt=" in report
        assert "retx=0" in report

    def test_nic_report(self, sim):
        a, b, _f = build_qpip_pair(sim)
        from repro.apps.pingpong import qpip_tcp_rtt
        qpip_tcp_rtt(sim, a, b, iterations=5)
        report = nic_report(a.nic)
        assert "occupancy" in report
        assert "build_tcp_hdr" in report

    def test_fabric_reports(self, sim):
        a, b, fabric = build_qpip_pair(sim)
        from repro.apps.pingpong import qpip_tcp_rtt
        qpip_tcp_rtt(sim, a, b, iterations=5)
        report = fabric_report(fabric)
        assert "switch" in report
        assert "util" in report

        sim2 = Simulator()
        a2, b2, eth_fabric = build_gige_pair(sim2)
        from repro.apps.pingpong import socket_tcp_rtt
        socket_tcp_rtt(sim2, a2, b2, iterations=5)
        report = fabric_report(eth_fabric)
        assert "forwarded" in report


class TestPcapExport:
    def test_pcap_file_structure(self, sim, tmp_path):
        import struct
        from repro.apps.pingpong import qpip_tcp_rtt
        a, b, _f = build_qpip_pair(sim)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(a.nic)
        qpip_tcp_rtt(sim, a, b, iterations=3)
        path = tmp_path / "capture.pcap"
        n = tap.write_pcap(str(path))
        raw = path.read_bytes()
        magic, _maj, _min, _tz, _sig, snap, linktype = struct.unpack_from(
            "<IHHiIII", raw, 0)
        assert magic == 0xA1B2C3D4
        assert linktype == 101            # RAW IP (Myrinet header stripped)
        assert n == len(tap)
        # Walk the per-packet records and verify framing consistency.
        offset = 24
        walked = 0
        while offset < len(raw):
            _sec, _usec, incl, orig = struct.unpack_from("<IIII", raw, offset)
            assert incl == orig
            offset += 16 + incl
            walked += 1
        assert walked == n

    def test_pcap_ethernet_linktype(self, sim, tmp_path):
        import struct
        from repro.apps.pingpong import socket_tcp_rtt
        a, b, _f = build_gige_pair(sim)
        tap = Wiretap(sim)
        tap.attach_dumb_nic(a.nic)
        socket_tcp_rtt(sim, a, b, iterations=2)
        path = tmp_path / "eth.pcap"
        tap.write_pcap(str(path))
        raw = path.read_bytes()
        linktype = struct.unpack_from("<I", raw, 20)[0]
        assert linktype == 1              # LINKTYPE_ETHERNET
