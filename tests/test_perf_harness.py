"""The wall-clock perf harness: report structure and the regression gate.

The harness itself must never affect simulated results — it only runs
existing workloads — so these tests check the *measurement plumbing*:
the ``BENCH_perf.json`` schema, the baseline round-trip, and the
events/sec regression arithmetic CI relies on.
"""

import json

import pytest

from repro.bench.perf import (compare_to_baseline, load_baseline, run_perf,
                              write_report)


@pytest.fixture(scope="module")
def quick_report():
    # One real (quick) run shared by the structural tests.  Profiling and
    # the naive-mode comparison re-run workloads; skip both for speed.
    return run_perf(quick=True, profile=False, compare_naive=False)


class TestReportStructure:
    def test_all_workloads_measured(self, quick_report):
        assert quick_report["harness"] == "repro-perf"
        assert quick_report["quick"] is True
        names = set(quick_report["workloads"])
        assert names == {"ttcp_bulk", "pingpong", "kvstore_mixed",
                         "chaos_recover"}

    def test_workload_fields(self, quick_report):
        for name, w in quick_report["workloads"].items():
            assert w["wall_s"] > 0, name
            assert w["bytes"] > 0, name
            assert w["sim_bytes_per_wall_s"] > 0, name
            if name == "chaos_recover":
                # run_chaos owns its simulator; no event counter surfaces.
                assert w["events_per_sec"] is None
            else:
                assert w["events_per_sec"] > 0, name
                assert w["events"] > 0, name
                assert w["sim_us"] > 0, name

    def test_report_is_json_and_round_trips(self, quick_report, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        out = write_report(quick_report, str(path))
        assert out == str(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(quick_report, sort_keys=True))

    def test_load_baseline_round_trip(self, quick_report, tmp_path):
        path = tmp_path / "baseline_perf.json"
        write_report(quick_report, str(path))
        base = load_baseline(str(path))
        assert base["workloads"].keys() == quick_report["workloads"].keys()

    def test_load_baseline_missing_file(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None


def _report_with(eps):
    return {"workloads": {"ttcp_bulk": {"events_per_sec": eps}}}


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        ok, messages = compare_to_baseline(_report_with(80_000),
                                           _report_with(100_000),
                                           max_regression=0.30)
        assert ok
        assert any("ttcp_bulk" in m for m in messages)

    def test_beyond_tolerance_fails(self):
        ok, messages = compare_to_baseline(_report_with(69_000),
                                           _report_with(100_000),
                                           max_regression=0.30)
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_improvement_passes(self):
        ok, _ = compare_to_baseline(_report_with(250_000),
                                    _report_with(100_000))
        assert ok

    def test_unmeasurable_workload_skipped(self):
        # chaos_recover has no event counter: present in both, None eps.
        ok, messages = compare_to_baseline(_report_with(None),
                                           _report_with(None))
        assert ok
        assert any("skipped" in m for m in messages)

    def test_workload_missing_from_baseline_skipped(self):
        ok, messages = compare_to_baseline(_report_with(100_000),
                                           {"workloads": {}})
        assert ok
        assert any("skipped" in m for m in messages)
