"""The regression gate: scenario specs, hostile-network invariants,
golden drift detection, and crash-isolated corpus execution.

The heavyweight properties pinned here:

* corruption end-to-end: wire bit-flips are caught by receiver
  checksums, healed by TCP retransmission, and the application observes
  byte-identical payloads — no corrupted segment ever reaches a CQE;
* incast: N→1 fan-in completes bounded, loss-free, and bit-identically
  across fast/naive simulation and 1-process/sharded execution;
* the gate never hangs: a wedged or SIGKILLed scenario worker becomes a
  structured ScenarioFailed within its wall-clock cap, and a wedged
  shard worker becomes a typed WorkerHung.
"""

import json
import os
import signal
import time

import pytest

from repro import fastpath
from repro.cluster import (ClusterSpec, WorkerHung, incast_flows,
                           run_cluster, run_single)
from repro.cluster.shard import ShardWorker
from repro.errors import ConfigError
from repro.faults import FaultBinding, FaultEntry
from repro.gate import (Expectation, ScenarioFailed, ScenarioPassed,
                        ScenarioSpec, WorkloadSpec, check_outcomes,
                        compare_digests, evaluate_invariants, load_corpus,
                        load_scenario, record_outcomes, run_corpus,
                        run_scenario, scenario_digests)
from repro.obs.query import TraceQuery

REPO_SCENARIOS = os.path.join(os.path.dirname(__file__), "..", "scenarios")


def _tiny_scenario(name="tiny", **kw):
    defaults = dict(
        name=name, hosts=8, seed=5, horizon=8_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=2,
                              total_bytes=8192, chunk=4096),
        workers=(1, 2), timeout_s=60.0)
    defaults.update(kw)
    return ScenarioSpec(**defaults)


class TestScenarioSpec:
    def test_yaml_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = _tiny_scenario(
            faults=(FaultBinding("trunk:0:b2a",
                                 (FaultEntry("corrupt", rate=0.25),)),),
            expect=Expectation(min_checksum_errors=1,
                               min_fault={"trunk:0:b2a.corruptions": 1}),
            tolerances={"wr.send.latency_us": {"rel": 0.1}})
        path = tmp_path / "tiny.yaml"
        path.write_text(yaml.safe_dump(spec.to_dict()))
        assert load_scenario(str(path)) == spec

    def test_json_round_trip(self, tmp_path):
        spec = _tiny_scenario()
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_scenario(str(path)) == spec

    def test_name_must_match_filename(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps(_tiny_scenario().to_dict()))
        with pytest.raises(ConfigError, match="does not match"):
            load_scenario(str(path))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ScenarioSpec.from_dict({"name": "x", "typo_field": 1})
        with pytest.raises(ConfigError, match="unknown keys"):
            ScenarioSpec.from_dict({"name": "x",
                                    "workload": {"pattern": "pairs",
                                                 "nope": 2}})

    def test_bad_tier_and_workers_rejected(self):
        with pytest.raises(ConfigError, match="tier"):
            _tiny_scenario(tier="weekly")
        with pytest.raises(ConfigError, match="workers"):
            _tiny_scenario(workers=())

    def test_bad_fault_where_rejected(self):
        with pytest.raises(ConfigError):
            FaultBinding("switch:0:egress", (FaultEntry("drop"),))
        with pytest.raises(ConfigError):
            FaultBinding("trunk:0:sideways", (FaultEntry("drop"),))

    def test_corpus_tier_filter_and_names(self, tmp_path):
        for name, tier in (("a_fast", "commit"), ("b_slow", "nightly")):
            spec = _tiny_scenario(name=name, tier=tier)
            (tmp_path / f"{name}.json").write_text(
                json.dumps(spec.to_dict()))
        assert [s.name for s in load_corpus(str(tmp_path))] == \
            ["a_fast", "b_slow"]
        assert [s.name for s in load_corpus(str(tmp_path),
                                            tier="commit")] == ["a_fast"]
        # explicit names beat the tier filter
        assert [s.name for s in load_corpus(str(tmp_path), tier="commit",
                                            names=["b_slow"])] == ["b_slow"]
        with pytest.raises(ConfigError, match="unknown scenarios"):
            load_corpus(str(tmp_path), names=["nope"])

    def test_committed_corpus_loads_and_covers_the_hostile_family(self):
        specs = load_corpus(REPO_SCENARIOS, tier="nightly")
        names = {s.name for s in specs}
        assert len(specs) >= 12
        kinds = {e.kind for s in specs for b in s.faults for e in b.entries}
        assert {"drop", "corrupt", "duplicate"} <= kinds
        assert kinds & {"reorder", "delay"}
        assert any("incast" in n for n in names)
        assert any(s.tier == "nightly" for s in specs)
        commit = load_corpus(REPO_SCENARIOS, tier="commit")
        assert all(s.tier == "commit" for s in commit)


class TestCorruptionEndToEnd:
    """Satellite: corrupt faults on a trunk must be caught by checksums,
    healed by retransmission, and invisible to the application."""

    SPEC = ClusterSpec(
        topology="fat-tree", hosts=8,
        flows=incast_flows(4, 8, total_bytes=16384, chunk=4096),
        horizon=20_000_000.0, seed=3, metrics=True,
        faults=(FaultBinding("trunk:0:b2a",
                             (FaultEntry("corrupt", rate=0.3),)),))

    def test_checksums_catch_and_retransmit_heals(self):
        result = run_single(self.SPEC)
        checksum_errors = result.metrics["net.checksum_errors"]["value"]
        corruptions = result.fault_counts["trunk:0:b2a"]["corruptions"]
        assert corruptions >= 1
        assert checksum_errors == corruptions
        assert result.metrics["tcp.retransmitted_segs"]["value"] >= 1
        for fid, record in result.flows.items():
            assert record["rx_bytes"] == 16384
            assert record["srv_mismatches"] == 0
            assert record["srv_dup"] == 0
            assert record["srv_ooo"] == 0
            assert record["srv_verified"] == len(record["server_cqes"])

    def test_no_corrupted_segment_reaches_a_cqe(self):
        worker = ShardWorker(self.SPEC, 0, 1)
        worker.run_to(self.SPEC.horizon)
        q = TraceQuery(worker.recorder)
        corrupted = {ev.fields["pkt"]
                     for ev in q.events("link", "link.corrupt")}
        dropped = {ev.fields["pkt"]
                   for ev in q.events("net", "net.checksum_drop")}
        assert corrupted, "fault plan injected no corruption"
        # every corrupted packet was caught at the receiver's checksum
        assert corrupted <= dropped
        assert q.count("verbs", "cqe") > 0
        assert q.count("verbs", "cqe", status="SUCCESS") == \
            q.count("verbs", "cqe")

    def test_sharded_and_naive_agree(self):
        oracle = run_single(self.SPEC)
        from repro.cluster import assert_equivalent
        assert_equivalent(oracle, run_cluster(self.SPEC, 2))
        with fastpath.disabled():
            naive = run_single(self.SPEC)
        assert scenario_digests(naive) == scenario_digests(oracle)


class TestIncastRegression:
    """Satellite: 8→1 incast on the fat-tree — bounded completion, no WR
    loss, per-seed deterministic counters in fast and naive modes."""

    SPEC = ClusterSpec(
        topology="fat-tree", hosts=12,
        flows=incast_flows(8, 12, total_bytes=16384, chunk=4096),
        horizon=20_000_000.0, seed=41, metrics=True)
    # Simultaneous starts on opposite sides of a shard cut hit the
    # documented tie-ordering exception (docs/cluster.md); the sharded
    # bit-exactness claim is made on the staggered incast, like the
    # committed gate corpus.
    STAGGERED = ClusterSpec(
        topology="fat-tree", hosts=12,
        flows=incast_flows(8, 12, total_bytes=16384, chunk=4096,
                           stagger=200.0),
        horizon=20_000_000.0, seed=41, metrics=True)

    def _counters(self, result):
        return {name: result.metrics.get(name, {"value": 0})["value"]
                for name in ("tcp.retransmitted_segs", "tcp.rto_timeouts",
                             "tcp.ecn_reductions", "net.checksum_errors")}

    def test_bounded_completion_and_no_wr_loss(self):
        result = run_single(self.SPEC)
        assert len(result.flows) == 8
        done = 0.0
        for record in result.flows.values():
            assert record["rx_bytes"] == 16384
            assert record["tx_bytes"] == 16384
            assert record["srv_mismatches"] == 0
            for cqe in record["server_cqes"] + record["client_cqes"]:
                assert cqe[3] == "SUCCESS"
            done = max(done, record["rx_done"])
        assert done < 10_000.0, f"incast did not complete boundedly: " \
                                f"{done}us"

    def test_counters_deterministic_across_modes_and_shardings(self):
        with fastpath.forced(True):
            fast = run_single(self.SPEC)
        with fastpath.disabled():
            naive = run_single(self.SPEC)
        sharded = run_cluster(self.SPEC, 2)
        a, b, c = (self._counters(r) for r in (fast, naive, sharded))
        assert a == b == c
        assert scenario_digests(fast) == scenario_digests(naive)

    def test_staggered_incast_bit_identical_when_sharded(self):
        oracle = run_single(self.STAGGERED)
        sharded = run_cluster(self.STAGGERED, 2)
        assert scenario_digests(oracle) == scenario_digests(sharded)


class TestBatchedPathAdversityDeterminism:
    """Satellite: the burst fast paths (sender segment batching,
    doorbell/CQE coalescing, kernel burst walkers, precompiled codecs)
    must be invisible under adversity, not just on clean runs.  The
    committed gate scenarios below drive retransmission, SACK, dup-ACK
    and reassembly through the batched paths; the digests (CQE streams,
    wire traces, metrics, final clock) must match the naive oracle."""

    NAMES = ("reorder_storm_trunk", "drop_host_links", "corrupt_trunk")

    @pytest.mark.parametrize("name", NAMES)
    def test_fast_digests_match_naive(self, name):
        path = os.path.join(REPO_SCENARIOS, f"{name}.yaml")
        if not os.path.exists(path):
            pytest.skip(f"committed scenario {name} not present")
        spec = load_scenario(path).cluster_spec()
        with fastpath.forced(True):
            fast = run_single(spec)
        with fastpath.disabled():
            naive = run_single(spec)
        assert scenario_digests(fast) == scenario_digests(naive)


class TestInvariantsAndDigests:
    def test_clean_scenario_passes(self):
        spec = _tiny_scenario()
        result = run_single(spec.cluster_spec())
        assert evaluate_invariants(spec, result) == []

    def test_unmet_minimums_are_named(self):
        spec = _tiny_scenario(expect=Expectation(
            min_checksum_errors=1, min_retransmits=2,
            min_fault={"trunk:0:a2b.drops": 3}))
        result = run_single(spec.cluster_spec())
        violations = evaluate_invariants(spec, result)
        text = "\n".join(violations)
        assert "net.checksum_errors=0 < min 1" in text
        assert "tcp.retransmitted_segs=0 < min 2" in text
        assert "fault_counts[trunk:0:a2b].drops=0 < min 3" in text

    def test_completion_deadline_violation_is_named(self):
        spec = _tiny_scenario(expect=Expectation(completes_by_us=1.0))
        result = run_single(spec.cluster_spec())
        violations = evaluate_invariants(spec, result)
        assert any("completes_by_us" in v for v in violations)

    def test_compare_digests_names_first_divergence(self):
        spec = _tiny_scenario()
        result = run_single(spec.cluster_spec())
        golden = scenario_digests(result)
        fresh = json.loads(json.dumps(golden))
        fid = sorted(fresh["cqe"])[0]
        fresh["cqe"][fid] = "0" * 16
        fresh["metrics"]["tcp.retransmitted_segs"] = \
            {"type": "counter", "value": 99}
        diffs = compare_digests(golden, fresh, {})
        assert diffs[0].startswith(f"cqe[{fid}]")
        assert any("metrics[tcp.retransmitted_segs]" in d for d in diffs)

    def test_tolerance_bands_absorb_small_drift(self):
        spec = _tiny_scenario()
        golden = scenario_digests(run_single(spec.cluster_spec()))
        fresh = json.loads(json.dumps(golden))
        name = "wr.send.latency_us"
        assert fresh["metrics"][name]["type"] == "histogram"
        fresh["metrics"][name]["sum"] *= 1.05
        fresh["metrics"][name]["digest"] = "x" * 16
        assert any(name in d for d in compare_digests(golden, fresh, {}))
        assert not any(name in d for d in compare_digests(
            golden, fresh, {name: {"rel": 0.10}}))
        assert any(name in d for d in compare_digests(
            golden, fresh, {name: {"rel": 0.01}}))


class TestGoldenRoundTrip:
    def _corpus(self, tmp_path):
        spec = _tiny_scenario(name="rt")
        (tmp_path / "rt.json").write_text(json.dumps(spec.to_dict()))
        return load_corpus(str(tmp_path))

    def test_record_then_check_is_green(self, tmp_path):
        specs = self._corpus(tmp_path)
        outcomes = run_corpus(specs, jobs=1)
        assert all(isinstance(o, ScenarioPassed) for o in outcomes)
        record_outcomes(specs, outcomes, str(tmp_path))
        checks = check_outcomes(specs, run_corpus(specs, jobs=1),
                                str(tmp_path))
        assert [c.status for c in checks] == ["ok"]

    def test_missing_golden_fails_check(self, tmp_path):
        specs = self._corpus(tmp_path)
        checks = check_outcomes(specs, run_corpus(specs, jobs=1),
                                str(tmp_path))
        assert checks[0].status == "no_golden"
        assert "gate record" in checks[0].detail

    def test_seed_flip_is_named_drift(self, tmp_path):
        # A clean incast is seed-insensitive; a probabilistic fault makes
        # the run depend on the seeded fault RNG, so a seed flip drifts.
        faults = (FaultBinding("host:h0:rx",
                               (FaultEntry("drop", rate=0.3),)),)
        spec = _tiny_scenario(name="rt", faults=faults)
        (tmp_path / "rt.json").write_text(json.dumps(spec.to_dict()))
        specs = load_corpus(str(tmp_path))
        outcomes = run_corpus(specs, jobs=1)
        record_outcomes(specs, outcomes, str(tmp_path))
        flipped = _tiny_scenario(name="rt", faults=faults, seed=6)
        checks = check_outcomes([flipped], run_corpus([flipped], jobs=1),
                                str(tmp_path))
        assert checks[0].status == "drift"
        assert checks[0].name == "rt"
        first = checks[0].first_divergence
        assert first is not None and first.split("[")[0] in (
            "cqe", "wire", "metrics", "fault_counts", "now")
        assert "first divergence" in checks[0].detail


class TestCorpusIsolation:
    """The gate must never hang: wedged/killed children become
    structured failures within their wall-clock caps."""

    def test_hung_scenario_times_out(self, monkeypatch, tmp_path):
        import repro.gate.runner as gr
        monkeypatch.setattr(gr, "run_scenario",
                            lambda spec: time.sleep(60))
        monkeypatch.setattr(gr, "KILL_GRACE_S", 1.0)
        spec = _tiny_scenario(name="wedged", timeout_s=1.0)
        t0 = time.monotonic()
        outcomes = run_corpus([spec], jobs=1)
        assert time.monotonic() - t0 < 20
        (outcome,) = outcomes
        assert isinstance(outcome, ScenarioFailed)
        assert outcome.status == "timeout"
        assert "wall-clock cap" in outcome.detail

    def test_sigkilled_scenario_is_reported_crashed(self, monkeypatch):
        import repro.gate.runner as gr

        def die(spec):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(gr, "run_scenario", die)
        (outcome,) = run_corpus([_tiny_scenario(name="victim")], jobs=1)
        assert isinstance(outcome, ScenarioFailed)
        assert outcome.status == "crashed"
        assert "died without reporting" in outcome.detail

    def test_crash_is_isolated_from_the_rest_of_the_corpus(self,
                                                           monkeypatch):
        import repro.gate.runner as gr
        real = run_scenario

        def maybe_die(spec):
            if spec.name == "bad":
                raise RuntimeError("scenario exploded")
            return real(spec)

        monkeypatch.setattr(gr, "run_scenario", maybe_die)
        specs = [_tiny_scenario(name="bad"), _tiny_scenario(name="good")]
        bad, good = run_corpus(specs, jobs=2)
        assert isinstance(bad, ScenarioFailed)
        assert bad.status == "error"
        assert "scenario exploded" in bad.detail
        assert isinstance(good, ScenarioPassed)

    def test_invariant_violation_is_structured(self):
        spec = _tiny_scenario(
            name="unmet", expect=Expectation(min_checksum_errors=5))
        (outcome,) = run_corpus([spec], jobs=1)
        assert isinstance(outcome, ScenarioFailed)
        assert outcome.status == "invariant_failed"
        assert "net.checksum_errors" in outcome.detail


class TestWorkerHung:
    """Satellite: a wedged forked shard worker raises a typed WorkerHung
    carrying the last acknowledged sync window, instead of leaking."""

    def _spec(self):
        return ClusterSpec(
            topology="fat-tree", hosts=8,
            flows=incast_flows(2, 8, total_bytes=8192, chunk=4096),
            horizon=5_000_000.0, seed=5)

    def test_step_timeout_raises_worker_hung(self, monkeypatch):
        real_step = ShardWorker.step

        def wedge(self, until, msgs):
            if self.shard_id == 1 and until > 2000.0:
                time.sleep(30)
            return real_step(self, until, msgs)

        # fork inherits the monkeypatch, so the child wedges too
        monkeypatch.setattr(ShardWorker, "step", wedge)
        import repro.cluster.runner as cr
        monkeypatch.setattr(cr, "SHUTDOWN_GRACE_S", 1.0)
        t0 = time.monotonic()
        with pytest.raises(WorkerHung) as exc:
            run_cluster(self._spec(), 2, processes=True, step_timeout=2.0)
        assert time.monotonic() - t0 < 25
        assert exc.value.shard_id == 1
        assert exc.value.last_window <= 2000.0
        assert "last acknowledged window" in str(exc.value)

    def test_worker_hung_is_a_cluster_error(self):
        from repro.cluster import ClusterError
        err = WorkerHung(3, 1234.5, "testing")
        assert isinstance(err, ClusterError)
        assert err.shard_id == 3
        assert err.last_window == 1234.5

    def test_clean_forked_run_still_works_with_timeout(self):
        spec = self._spec()
        oracle = run_single(spec)
        from repro.cluster import assert_equivalent
        sharded = run_cluster(spec, 2, processes=True, step_timeout=30.0)
        assert_equivalent(oracle, sharded)


class TestCorpusOnlyGlob:
    """`--only <glob>`: run one scenario or one family, never silently
    run nothing."""

    def _write(self, tmp_path, *names):
        for name in names:
            spec = _tiny_scenario(name=name)
            (tmp_path / f"{name}.json").write_text(
                json.dumps(spec.to_dict()))

    def test_only_selects_exact_and_family(self, tmp_path):
        self._write(tmp_path, "incast_clean", "incast_lossy",
                    "pingpong_ring")
        assert [s.name for s in
                load_corpus(str(tmp_path), only="incast_clean")] == \
            ["incast_clean"]
        assert [s.name for s in
                load_corpus(str(tmp_path), only="incast_*")] == \
            ["incast_clean", "incast_lossy"]

    def test_only_composes_with_tier_and_names(self, tmp_path):
        for name, tier in (("a_fast", "commit"), ("a_slow", "nightly")):
            spec = _tiny_scenario(name=name, tier=tier)
            (tmp_path / f"{name}.json").write_text(
                json.dumps(spec.to_dict()))
        assert [s.name for s in load_corpus(str(tmp_path), tier="commit",
                                            only="a_*")] == ["a_fast"]
        # names narrows first; the glob must then match inside it
        with pytest.raises(ConfigError, match="matches no scenario"):
            load_corpus(str(tmp_path), names=["a_slow"], only="a_fast")

    def test_unmatched_glob_is_an_error_naming_candidates(self, tmp_path):
        self._write(tmp_path, "incast_clean")
        with pytest.raises(ConfigError, match="incast_clean"):
            load_corpus(str(tmp_path), only="nope_*")


class TestOptionalYamlDependency:
    """A YAML spec without pyyaml is a structured, actionable
    MissingDependency — never a bare ImportError traceback."""

    def _hide_yaml(self, monkeypatch):
        import sys
        # None in sys.modules makes `import yaml` raise ImportError
        monkeypatch.setitem(sys.modules, "yaml", None)

    def test_yaml_without_pyyaml_is_structured(self, tmp_path,
                                               monkeypatch):
        from repro.errors import MissingDependency, ReproError
        spec = _tiny_scenario(name="needsyaml")
        path = tmp_path / "needsyaml.yaml"
        path.write_text(json.dumps(spec.to_dict()))  # JSON is valid YAML
        self._hide_yaml(monkeypatch)
        with pytest.raises(MissingDependency) as err:
            load_scenario(str(path))
        assert err.value.dependency == "pyyaml"
        assert "pip install pyyaml" in err.value.hint
        assert "convert the spec to .json" in str(err.value)
        # MissingDependency stays inside the repo's error taxonomy, so
        # every CLI's existing ReproError rendering applies unchanged
        assert isinstance(err.value, ConfigError)
        assert isinstance(err.value, ReproError)

    def test_json_specs_never_need_pyyaml(self, tmp_path, monkeypatch):
        spec = _tiny_scenario(name="plainjson")
        path = tmp_path / "plainjson.json"
        path.write_text(json.dumps(spec.to_dict()))
        self._hide_yaml(monkeypatch)
        assert load_scenario(str(path)) == spec

    def test_corpus_load_reports_the_yaml_file(self, tmp_path,
                                               monkeypatch):
        from repro.errors import MissingDependency
        (tmp_path / "a.json").write_text(
            json.dumps(_tiny_scenario(name="a").to_dict()))
        (tmp_path / "b.yaml").write_text("name: b\nhosts: 4\n")
        self._hide_yaml(monkeypatch)
        with pytest.raises(MissingDependency, match="b.yaml"):
            load_corpus(str(tmp_path))
