"""Tests for the fault-injection subsystem (`repro.faults`): plans,
hook composition, NIC faults, and the QP failure semantics."""

import random

import pytest

from repro import obs
from repro.bench.configs import build_qpip_pair
from repro.core import QPState, QPTransport, WRStatus
from repro.obs import TraceQuery
from repro.errors import (CompletionError, ConfigError, QPStateError,
                          ResourceExhausted)
from repro.fabric.link import FaultVerdict, run_packet_hooks
from repro.faults import (FaultInjector, FaultPlan, FaultSpec,
                          NicFaultController, corrupt_packet,
                          install_on_link, install_on_switch)
from repro.net.addresses import Endpoint
from repro.net.packet import BytesPayload, Packet
from repro.sim import RngHub, Simulator


# -- rigging (same shape as test_qpip_core) ---------------------------------

@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def pair(sim):
    return build_qpip_pair(sim)


def run_procs(sim, *gens, until=60_000_000):
    """Run processes to completion without fast-forwarding the clock to
    ``until`` (a multi-second idle gap would poison the RTT estimate of
    any later traffic)."""
    procs = [sim.process(g) for g in gens]
    deadline = sim.now + until
    while sim.now < deadline and not all(p.triggered for p in procs):
        sim.run(until=min(deadline, sim.now + 10_000))
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


def setup_connected_qps(sim, a, b, port=9000, recv_bufs=8,
                        buf_size=16 * 1024):
    rig = {}

    def server():
        cq = yield from b.iface.create_cq()
        qp = yield from b.iface.create_qp(QPTransport.TCP, cq)
        bufs = []
        for _ in range(recv_bufs):
            buf = yield from b.iface.register_memory(buf_size)
            yield from b.iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from b.iface.listen(port)
        yield from b.iface.accept(listener, qp)
        rig.update(server_qp=qp, server_cq=cq, server_bufs=bufs)

    def client():
        cq = yield from a.iface.create_cq()
        qp = yield from a.iface.create_qp(QPTransport.TCP, cq)
        yield sim.timeout(500)
        yield from a.iface.connect(qp, Endpoint(b.addr, port))
        rig.update(client_qp=qp, client_cq=cq)

    run_procs(sim, server(), client())
    return rig


class _ScriptedRng(random.Random):
    """random() returns scripted values, then 0.99 (never triggers)."""

    def __init__(self, values):
        super().__init__(0)
        self._values = list(values)

    def random(self):
        return self._values.pop(0) if self._values else 0.99


class _FakeSim:
    def __init__(self, now=0.0):
        self.now = now


def payload_packet(data=b"hello fault world"):
    return Packet(headers=[], payload=BytesPayload(data))


# -- plan validation --------------------------------------------------------

class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("explode")

    @pytest.mark.parametrize("kwargs", [
        dict(rate=1.5), dict(rate=-0.1), dict(burst=0), dict(copies=0),
        dict(delay=-1.0), dict(jitter=-1.0), dict(start=100.0, stop=50.0),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSpec("drop", **kwargs)

    def test_window_activity(self):
        spec = FaultSpec("drop", rate=1.0, start=100.0, stop=200.0)
        assert not spec.active(50.0)
        assert spec.active(100.0)
        assert spec.active(199.0)
        assert not spec.active(200.0)

    def test_plan_builder_and_describe(self):
        plan = (FaultPlan().drop(0.02).corrupt(0.01)
                .reorder(0.05, delay=40.0, jitter=20.0)
                .duplicate(0.1, copies=2, burst=3))
        assert len(plan) == 4
        assert [s.kind for s in plan] == \
            ["drop", "corrupt", "reorder", "duplicate"]
        text = plan.describe()
        assert "drop p=0.02" in text and "burst=3" in text


# -- hook contract ----------------------------------------------------------

class TestPacketHooks:
    def test_legacy_true_drops(self):
        pkt = payload_packet()
        _p, drop, copies, delay, _c = run_packet_hooks(
            pkt, [lambda p: True, lambda p: FaultVerdict(copies=1)])
        assert drop and copies == 0    # drop short-circuits the chain

    def test_verdicts_compose(self):
        pkt = payload_packet()
        hooks = [lambda p: FaultVerdict(copies=1),
                 lambda p: None,
                 lambda p: FaultVerdict(delay=25.0, copies=1)]
        out, drop, copies, delay, corrupted = run_packet_hooks(pkt, hooks)
        assert out is pkt and not drop and not corrupted
        assert copies == 2 and delay == 25.0

    def test_replacement_flows_to_later_hooks(self):
        pkt = payload_packet()
        clone = corrupt_packet(pkt, random.Random(1))
        seen = []
        hooks = [lambda p: FaultVerdict(packet=clone, corrupted=True),
                 lambda p: seen.append(p)]
        out, _d, _c, _dl, corrupted = run_packet_hooks(pkt, hooks)
        assert out is clone and seen == [clone] and corrupted

    def test_corrupt_packet_flips_one_bit_in_a_copy(self):
        data = bytes(range(64))
        pkt = payload_packet(data)
        clone = corrupt_packet(pkt, random.Random(7))
        assert pkt.payload.to_bytes() == data          # original untouched
        flipped = clone.payload.to_bytes()
        assert flipped != data and len(flipped) == len(data)
        diff = [a ^ b for a, b in zip(flipped, data) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_corrupt_packet_without_payload_sets_flag(self):
        pkt = Packet(headers=[])
        clone = corrupt_packet(pkt, random.Random(7))
        assert clone.corrupted and not pkt.corrupted


class TestFaultInjector:
    def test_time_window_gates_specs(self):
        plan = FaultPlan().drop(1.0, start=100.0, stop=200.0)
        fake = _FakeSim(now=0.0)
        inj = FaultInjector(fake, plan, random.Random(0))
        assert inj(payload_packet()) is None
        fake.now = 150.0
        assert inj(payload_packet()).drop
        fake.now = 250.0
        assert inj(payload_packet()) is None
        assert inj.counts()["drops"] == 1

    def test_burst_hits_consecutive_packets(self):
        plan = FaultPlan().drop(0.5, burst=3)
        # One trigger (0.4 < 0.5); the burst then consumes no randomness.
        inj = FaultInjector(_FakeSim(), plan, _ScriptedRng([0.4]))
        verdicts = [inj(payload_packet()) for _ in range(5)]
        dropped = [v is not None and v.drop for v in verdicts]
        assert dropped == [True, True, True, False, False]
        assert inj.counts()["drops"] == 3

    def test_match_predicate_scopes_spec(self):
        plan = FaultPlan().drop(1.0, match=lambda p: p.payload.length > 100)
        inj = FaultInjector(_FakeSim(), plan, random.Random(0))
        assert inj(payload_packet(b"small")) is None
        assert inj(payload_packet(bytes(200))).drop


# -- wire injection end to end ----------------------------------------------

def stream_messages(sim, a, rig, n=8, size=4096):
    """Client streams n sequence-stamped messages; returns them."""
    sent = []

    def client():
        iface = a.iface
        qp, cq = rig["client_qp"], rig["client_cq"]
        buf = yield from iface.register_memory(size)
        for i in range(n):
            data = bytes([i]) * size
            sent.append(data)
            buf.write(data)
            yield from iface.post_send(qp, [buf.sge(0, size)])
            done = 0
            while done == 0:
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    assert cqe.ok
                    done += 1

    run_procs(sim, client())
    return sent


class TestWireInjection:
    def test_composed_faults_recovered_by_tcp(self, sim, pair):
        """drop + duplicate + corrupt on one link direction: TCP recovers,
        every delivered byte is intact, and every counter fires."""
        a, b, fabric = pair
        rig = setup_connected_qps(sim, a, b)
        hub = RngHub(3)
        plan = FaultPlan().drop(0.1).duplicate(0.15).corrupt(0.2)
        inj = install_on_link(fabric.host_link("h0"), a.nic.attachment,
                              plan, hub.stream("fault"))
        sent = stream_messages(sim, a, rig, n=8, size=4096)

        d_out = fabric.host_link("h0").direction_from(a.nic.attachment)
        counts = inj.counts()
        assert counts["drops"] > 0 and counts["duplicates"] > 0 \
            and counts["corruptions"] > 0
        assert d_out.packets_dropped >= counts["drops"]
        assert d_out.packets_duplicated == counts["duplicates"]
        assert d_out.packets_corrupted == counts["corruptions"]
        # The receiver's checksum caught the corruption...
        assert b.firmware.stack.checksum_errors > 0
        # ...and retransmission delivered every byte bit-identical.
        conn = a.firmware.endpoints[rig["client_qp"].qp_num].conn
        assert conn.stats.retransmitted_segs > 0
        for i, buf in enumerate(rig["server_bufs"]):
            assert buf.read(4096) == sent[i]

    def test_injector_remove_detaches(self, sim, pair):
        a, b, fabric = pair
        rig = setup_connected_qps(sim, a, b)
        inj = install_on_link(fabric.host_link("h0"), a.nic.attachment,
                              FaultPlan().drop(1.0), RngHub(1).stream("f"))
        inj.remove()
        stream_messages(sim, a, rig, n=2, size=2048)   # would hang if armed
        assert inj.counts()["seen"] == 0
        inj.remove()                                   # idempotent

    def test_switch_egress_hooks(self, sim, pair):
        """Faults injected at the switch egress toward h1 are recovered
        and counted on the switch, not the links."""
        a, b, fabric = pair
        rig = setup_connected_qps(sim, a, b)
        sw = fabric.switches[0]
        port = fabric.hosts["h1"].switch_port
        plan = FaultPlan().drop(0.15).corrupt(0.1)
        inj = install_on_switch(sw, port, plan, RngHub(5).stream("sw"))
        sent = stream_messages(sim, a, rig, n=6, size=4096)
        assert inj.counts()["drops"] > 0
        assert sw.dropped_fault == inj.counts()["drops"]
        assert sw.corrupted_fault == inj.counts()["corruptions"]
        for i, buf in enumerate(rig["server_bufs"][:6]):
            assert buf.read(4096) == sent[i]

    def test_reorder_exercises_out_of_order_path(self, sim, pair):
        a, b, fabric = pair
        rig = setup_connected_qps(sim, a, b)
        plan = FaultPlan().reorder(0.3, delay=60.0, jitter=30.0)
        install_on_link(fabric.host_link("h0"), a.nic.attachment,
                        plan, RngHub(11).stream("f"))
        sent = stream_messages(sim, a, rig, n=8, size=8192)
        d_out = fabric.host_link("h0").direction_from(a.nic.attachment)
        assert d_out.packets_delayed > 0
        for i, buf in enumerate(rig["server_bufs"]):
            assert buf.read(8192) == sent[i]


# -- NIC-level faults -------------------------------------------------------

class TestNicFaults:
    def test_doorbell_overflow_recovers_via_rescan(self, sim, pair):
        """With a zero-capacity doorbell FIFO every posted write is lost;
        the sticky overflow bit forces QP rescans and no work is lost."""
        a, b, _fabric = pair
        faults = NicFaultController(a.nic, a.firmware)
        faults.limit_doorbell_fifo(0)
        rig = setup_connected_qps(sim, a, b)
        sent = stream_messages(sim, a, rig, n=4, size=4096)
        assert a.nic.doorbells_dropped > 0
        assert faults.counts()["doorbells_dropped"] == a.nic.doorbells_dropped
        for i, buf in enumerate(rig["server_bufs"][:4]):
            assert buf.read(4096) == sent[i]

    def test_firmware_stall_delays_but_preserves_traffic(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)
        faults = NicFaultController(a.nic, a.firmware)
        faults.stall_at(sim.now + 200.0, 5_000.0)
        sent = stream_messages(sim, a, rig, n=4, size=4096)
        assert a.nic.stalls_injected == 1
        for i, buf in enumerate(rig["server_bufs"][:4]):
            assert buf.read(4096) == sent[i]

    def test_qp_exhaustion_is_graceful(self, sim, pair):
        a, _b, _fabric = pair
        faults = NicFaultController(a.nic, a.firmware)
        faults.limit_qps(1)

        def app():
            iface = a.iface
            cq = yield from iface.create_cq()
            yield from iface.create_qp(QPTransport.TCP, cq)
            with pytest.raises(ResourceExhausted):
                yield from iface.create_qp(QPTransport.TCP, cq)
            # The app survives and can keep using what it has.
            buf = yield from iface.register_memory(1024)
            assert buf.length == 1024

        run_procs(sim, app())
        assert a.firmware.mgmt_rejections == 1

    def test_memory_region_exhaustion_is_graceful(self, sim, pair):
        a, _b, _fabric = pair
        faults = NicFaultController(a.nic, a.firmware)
        faults.limit_memory_regions(2)

        def app():
            iface = a.iface
            yield from iface.register_memory(1024)
            yield from iface.register_memory(1024)
            with pytest.raises(ResourceExhausted):
                yield from iface.register_memory(1024)

        run_procs(sim, app())
        assert a.firmware.mgmt_rejections == 1


# -- failure semantics: QP error + total flush ------------------------------

class TestFailureSemantics:
    def test_dma_error_flushes_everything(self, sim, pair):
        """A host-DMA fault on a send: the failing WR completes with
        LOCAL_DMA_ERROR, every other outstanding WR completes FLUSHED,
        the QP lands in ERROR, and posting afterwards raises."""
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)
        faults = NicFaultController(a.nic, a.firmware)
        faults.fail_dma(rate=1.0, count=1)
        statuses = []

        def client():
            iface = a.iface
            qp, cq = rig["client_qp"], rig["client_cq"]
            buf = yield from iface.register_memory(4096)
            posted = 0
            for _ in range(4):
                yield from iface.post_send(qp, [buf.sge(0, 4096)])
                posted += 1
            while len(statuses) < posted:
                cqes = yield from iface.wait(cq)
                statuses.extend(c.status for c in cqes)
            with pytest.raises(QPStateError):
                yield from iface.post_send(qp, [buf.sge(0, 4096)])
            with pytest.raises(QPStateError):
                yield from iface.post_recv(qp, [buf.sge(0, 4096)])

        with obs.capture(sim) as rec:
            run_procs(sim, client())
        assert statuses.count(WRStatus.LOCAL_DMA_ERROR) == 1
        assert statuses.count(WRStatus.FLUSHED) == 3
        assert rig["client_qp"].state is QPState.ERROR
        assert a.nic.dma_faults == 1
        assert a.firmware.dma_wr_errors == 1
        # Trace-level view of the same story: the QP errors exactly once,
        # flushes exactly once, and after the error transition nothing
        # completes successfully on that QP again.
        q = TraceQuery(rec)
        qp_num = rig["client_qp"].qp_num
        # Both nodes number their QPs locally, so pin the client's
        # firmware track to keep the peer's mirror events out.
        fw = f"{a.nic.attachment.name}.fw"
        q.assert_span_order("qp.error", "qp.flush", qp=qp_num, track=fw)
        assert q.count("qp", "qp.error", qp=qp_num, track=fw) == 1
        # The error flush, plus possibly an idempotent re-flush when the
        # teardown RST exchange settles.
        assert q.count("qp", "qp.flush", qp=qp_num, track=fw,
                       status="FLUSHED") >= 1
        error = q.first("qp", "qp.error", qp=qp_num, track=fw)
        q.assert_no_event("verbs", "cqe", after=error.ts,
                          qp=qp_num, status="SUCCESS")

    def test_remote_destroy_flushes_in_flight_sends(self, sim, pair):
        """The peer tears its QP down mid-transfer: the client sees the
        RST, its QP errors, and every posted WR still completes."""
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b, recv_bufs=2, buf_size=4096)
        completions = []

        def client():
            iface = a.iface
            qp, cq = rig["client_qp"], rig["client_cq"]
            buf = yield from iface.register_memory(4096)
            posted = 0
            while posted < 12:
                try:
                    yield from iface.post_send(qp, [buf.sge(0, 4096)])
                    posted += 1
                except QPStateError:
                    break
                cqes = yield from iface.poll(cq)
                completions.extend(cqes)
            while len(completions) < posted:
                cqes = yield from iface.wait(cq)
                completions.extend(cqes)

        def killer():
            yield sim.timeout(900.0)
            yield from b.iface.destroy_qp(rig["server_qp"])

        with obs.capture(sim) as rec:
            run_procs(sim, client(), killer())
        # WR conservation: posted == completed, none silently dropped.
        qp = rig["client_qp"]
        assert qp.state is QPState.ERROR
        assert len(completions) == qp.sends_posted
        assert any(not c.ok for c in completions)
        # The trace shows the same conservation law: every posted WR span
        # got a matching CQE, and the client's QP errored then flushed.
        q = TraceQuery(rec)
        assert (q.count("verbs", "cqe", qp=qp.qp_num, opcode="SEND")
                == q.count("verbs", "wr.send", ph="b", qp=qp.qp_num))
        fw = f"{a.nic.attachment.name}.fw"
        q.assert_span_order("qp.error", "qp.flush", qp=qp.qp_num, track=fw)
        # Every span begun on the client QP was also ended (flushes
        # close spans too): nothing is left dangling after teardown.
        ended = {ev.span for ev in rec.records if ev.ph == "e"}
        for begin in q.events("verbs", "wr.send", qp=qp.qp_num):
            assert begin.span in ended, f"span {begin.span} never ended"

    def test_completion_raise_for_status(self, sim, pair):
        a, b, _fabric = pair
        rig = setup_connected_qps(sim, a, b)
        faults = NicFaultController(a.nic, a.firmware)
        faults.fail_dma(rate=1.0, count=1)

        def client():
            iface = a.iface
            qp, cq = rig["client_qp"], rig["client_cq"]
            buf = yield from iface.register_memory(1024)
            yield from iface.post_send(qp, [buf.sge(0, 1024)])
            cqes = yield from iface.wait(cq)
            with pytest.raises(CompletionError) as err:
                cqes[0].raise_for_status()
            assert err.value.status is WRStatus.LOCAL_DMA_ERROR
            assert err.value.completion is cqes[0]

        run_procs(sim, client())
