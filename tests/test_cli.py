"""CLI coverage: exit codes, output shape, and error paths for repro.cli.

Slow experiments are monkeypatched with cheap stubs — these tests pin
the dispatch plumbing (parser wiring, exit codes, JSON shape), not the
physics behind each experiment.
"""

import json

import pytest

import repro.cli as cli
from repro.cli import EXPERIMENTS, build_parser, main


class TestListAndDispatch:
    def test_list_exits_zero_and_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        for extra in ("all", "chaos", "perf", "trace", "metrics"):
            assert extra in out

    def test_no_command_behaves_like_list(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_single_experiment_dispatch(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "fig3",
                            ("stub", lambda args: "FIG3-STUB-OUTPUT"))
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "FIG3-STUB-OUTPUT" in out
        assert "[fig3 ran in" in out

    def test_all_runs_every_experiment_once(self, capsys, monkeypatch):
        ran = []
        for name in list(EXPERIMENTS):
            monkeypatch.setitem(
                EXPERIMENTS, name,
                ("stub", lambda args, _n=name: ran.append(_n) or f"ran {_n}"))
        assert main(["all"]) == 0
        assert ran == list(EXPERIMENTS)
        # fig7's stub still receives the parsed --mb argument.
        out = capsys.readouterr().out
        assert "ran fig7" in out

    def test_fig7_mb_flag_reaches_the_experiment(self, capsys, monkeypatch):
        seen = {}
        monkeypatch.setitem(
            EXPERIMENTS, "fig7",
            ("stub", lambda args: seen.setdefault("mb", args.mb) and "" or ""))
        assert main(["fig7", "--mb", "7"]) == 0
        assert seen["mb"] == 7


class TestChaosCommand:
    def test_tiny_chaos_run_passes_invariants(self, capsys):
        assert main(["chaos", "--seed", "1",
                     "--messages", "4", "--size", "256"]) == 0
        out = capsys.readouterr().out
        assert "chaos[ttcp] seed=1" in out
        assert "4/4 messages" in out

    def test_kvstore_without_recover_is_an_error(self, capsys):
        rc = main(["chaos", "--workload", "kvstore",
                   "--messages", "4", "--size", "256"])
        assert rc == 2
        assert "repro chaos: error:" in capsys.readouterr().err


class TestPerfCommand:
    @pytest.fixture
    def stub_perf(self, monkeypatch, tmp_path):
        """Replace the benchmark internals with instant stubs."""
        import repro.bench.perf as perf
        report = {"workloads": {"w": {"events_per_sec": 100.0}}}
        calls = {}

        monkeypatch.setattr(perf, "run_perf",
                            lambda quick, profile, workload=None:
                            calls.setdefault(
                                "run", (quick, profile)) or report)
        monkeypatch.setattr(perf, "write_report",
                            lambda rep, path: calls.setdefault(
                                "wrote", path) or path)
        monkeypatch.setattr(perf, "render", lambda rep: "PERF-RENDERED")
        monkeypatch.setattr(perf, "load_baseline", lambda path: None)
        return calls

    def test_perf_without_baseline_exits_zero(self, capsys, stub_perf,
                                              tmp_path):
        out_path = str(tmp_path / "perf.json")
        assert main(["perf", "--quick", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "PERF-RENDERED" in out
        assert "no baseline found" in out
        assert stub_perf["run"] == (True, True)
        assert stub_perf["wrote"] == out_path

    def test_perf_regression_exits_one(self, capsys, monkeypatch, stub_perf,
                                       tmp_path):
        import repro.bench.perf as perf
        monkeypatch.setattr(perf, "load_baseline", lambda path: {"base": 1})
        monkeypatch.setattr(perf, "compare_to_baseline",
                            lambda rep, base, max_regression:
                            (False, ["w: regressed"]))
        assert main(["perf", "--quick",
                     "--out", str(tmp_path / "perf.json")]) == 1
        captured = capsys.readouterr()
        assert "w: regressed" in captured.out
        assert "regressed more than" in captured.err


class TestTraceAndMetricsCommands:
    def test_trace_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        assert main(["trace", "ttcp", "--bytes", "65536",
                     "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro trace: ttcp" in out
        for artifact in ("trace.jsonl", "trace.chrome.json",
                         "capture.pcapng", "metrics.txt"):
            assert (out_dir / artifact).is_file(), artifact

    def test_trace_json_summary_shape(self, capsys, tmp_path):
        assert main(["trace", "ttcp", "--bytes", "32768", "--json",
                     "--out-dir", str(tmp_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["workload"] == "ttcp"
        assert summary["bytes_moved"] == 32768
        assert summary["events"] > 0
        assert summary["packets_captured"] > 0
        assert "metrics" in summary
        assert set(summary["artifacts"]) == {
            "trace_jsonl", "trace_chrome", "pcapng", "metrics"}

    def test_metrics_prints_report_without_artifacts(self, capsys, tmp_path,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "pingpong", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "repro trace: pingpong" in out
        assert "metrics:" in out
        assert "cq.cqe" in out
        # metrics mode is report-only: no artifact files appear.
        assert not list(tmp_path.iterdir())

    def test_metrics_json_has_registry_snapshot(self, capsys):
        assert main(["metrics", "pingpong", "--iterations", "2",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2
        assert summary["metrics"]["verbs.send_posted"] >= 2

    def test_unknown_workload_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "nfsstone"])
        assert exc.value.code == 2

    def test_recorder_uninstalled_after_cli_run(self, capsys, tmp_path,
                                                monkeypatch):
        from repro import obs
        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "ttcp", "--bytes", "32768"]) == 0
        assert obs.RECORDER is None


class TestParser:
    def test_every_experiment_has_a_subparser(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "ttcp"])
        assert args.out_dir == "traces"
        assert args.bytes == 256 * 1024
        assert args.chunk == 8192

    def test_metrics_has_no_out_dir(self):
        args = build_parser().parse_args(["metrics", "ttcp"])
        assert not hasattr(args, "out_dir")


class _FakeChaosResult:
    """Stands in for ChaosResult: violations + the summary surface."""

    def __init__(self, violations):
        self._violations = violations
        self.messages_delivered = 4
        self.bytes_delivered = 1024

    def violations(self):
        return list(self._violations)

    def summary(self):
        return "chaos[stub] seed=1 4/4 messages"


class TestChaosJson:
    """Satellite: worker crash / invariant violation must exit nonzero
    with one structured JSON error object, consistent between --json and
    plain modes."""

    def _stub_chaos(self, monkeypatch, violations):
        import repro.faults as faults
        monkeypatch.setattr(
            faults, "run_chaos",
            lambda seed, **kw: _FakeChaosResult(violations))

    def test_json_success_shape(self, capsys, monkeypatch):
        self._stub_chaos(monkeypatch, [])
        assert main(["chaos", "--seed", "1", "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is True
        assert obj["command"] == "chaos"
        assert obj["messages_delivered"] == 4

    def test_invariant_violation_is_structured_and_exit_one(
            self, capsys, monkeypatch):
        self._stub_chaos(monkeypatch, ["lost 2 messages"])
        assert main(["chaos", "--seed", "1", "--json"]) == 1
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        assert obj["command"] == "chaos"
        assert obj["error"]["kind"] == "invariant_violation"
        assert obj["error"]["violations"] == ["lost 2 messages"]
        assert obj["error"]["seed"] == 1

    def test_invariant_violation_plain_mode_matches_exit_code(
            self, capsys, monkeypatch):
        self._stub_chaos(monkeypatch, ["lost 2 messages"])
        assert main(["chaos", "--seed", "1"]) == 1
        assert "invariant violation" in capsys.readouterr().err

    def test_usage_error_json_object_and_exit_two(self, capsys):
        rc = main(["chaos", "--workload", "kvstore", "--json",
                   "--messages", "4", "--size", "256"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        assert obj["error"]["kind"].endswith("Error")
        assert obj["error"]["message"]


class TestClusterJson:
    def _stub_boom(self, monkeypatch):
        import repro.cluster as cluster
        from repro.cluster import ClusterError

        def boom(spec, workers, processes=False, **kw):
            raise ClusterError("shard 1 went sideways")

        monkeypatch.setattr(cluster, "run_cluster", boom)

    def test_cluster_error_json_object_and_exit_one(self, capsys,
                                                    monkeypatch):
        self._stub_boom(monkeypatch)
        assert main(["cluster", "--workers", "2", "--json"]) == 1
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        assert obj["command"] == "cluster"
        assert obj["error"]["kind"] == "ClusterError"
        assert "sideways" in obj["error"]["message"]
        assert obj["error"]["workers"] == 2

    def test_cluster_error_plain_mode_matches_exit_code(self, capsys,
                                                        monkeypatch):
        self._stub_boom(monkeypatch)
        assert main(["cluster", "--workers", "2"]) == 1
        assert "repro cluster: error:" in capsys.readouterr().err


class TestGateCommand:
    """Gate CLI: list/run/record/check exit codes and JSON shapes over a
    tiny throwaway corpus."""

    def _corpus(self, tmp_path, seed=5):
        from repro.gate import Expectation, ScenarioSpec, WorkloadSpec
        from repro.faults import FaultBinding, FaultEntry
        spec = ScenarioSpec(
            name="tiny", hosts=8, seed=seed, horizon=8_000_000.0,
            workload=WorkloadSpec(pattern="incast", senders=2,
                                  total_bytes=8192, chunk=4096),
            faults=(FaultBinding("host:h0:rx",
                                 (FaultEntry("drop", rate=0.3),)),),
            workers=(1,), timeout_s=60.0, expect=Expectation())
        (tmp_path / "tiny.json").write_text(json.dumps(spec.to_dict()))
        return str(tmp_path)

    def test_list_json_shape(self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        assert main(["gate", "list", "--scenarios-dir", d, "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is True
        assert [s["name"] for s in obj["scenarios"]] == ["tiny"]

    def test_unknown_name_is_structured_usage_error(self, capsys,
                                                    tmp_path):
        d = self._corpus(tmp_path)
        rc = main(["gate", "run", "nope", "--scenarios-dir", d, "--json"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        assert obj["error"]["kind"] == "ConfigError"
        assert "nope" in obj["error"]["message"]

    def test_missing_dir_plain_mode_exit_two(self, capsys, tmp_path):
        rc = main(["gate", "run",
                   "--scenarios-dir", str(tmp_path / "absent")])
        assert rc == 2
        assert "repro gate: error:" in capsys.readouterr().err

    def test_bad_action_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["gate", "frobnicate"])
        assert exc.value.code == 2

    def test_check_without_golden_fails_then_record_check_green(
            self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        assert main(["gate", "check", "--scenarios-dir", d,
                     "--workers", "1", "--json"]) == 1
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        assert obj["scenarios"][0]["status"] == "no_golden"

        assert main(["gate", "record", "--scenarios-dir", d,
                     "--workers", "1", "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is True
        assert len(obj["recorded"]) == 1

        report = str(tmp_path / "report.json")
        assert main(["gate", "check", "--scenarios-dir", d,
                     "--workers", "1", "--report", report]) == 0
        out = capsys.readouterr().out
        assert "[PASS] tiny" in out
        with open(report) as f:
            assert json.load(f)["ok"] is True

    def test_drift_names_divergence_and_exits_one(self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        assert main(["gate", "record", "--scenarios-dir", d,
                     "--workers", "1", "--json"]) == 0
        capsys.readouterr()
        self._corpus(tmp_path, seed=6)  # overwrite spec: fault RNG flips
        assert main(["gate", "check", "--scenarios-dir", d,
                     "--workers", "1", "--json"]) == 1
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False
        entry = obj["scenarios"][0]
        assert entry["status"] == "drift"
        assert "first divergence" in entry["detail"]


class TestGateOnlyFlag:
    """`gate --only <glob>`: family-scoped gate runs from the CLI."""

    def _corpus(self, tmp_path):
        from repro.gate import ScenarioSpec, WorkloadSpec
        for name in ("incast_a", "incast_b", "pingpong_c"):
            spec = ScenarioSpec(
                name=name, hosts=8, seed=5, horizon=8_000_000.0,
                workload=WorkloadSpec(pattern="incast", senders=2,
                                      total_bytes=8192, chunk=4096),
                workers=(1,), timeout_s=60.0)
            (tmp_path / f"{name}.json").write_text(
                json.dumps(spec.to_dict()))
        return str(tmp_path)

    def test_only_filters_list(self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        assert main(["gate", "list", "--scenarios-dir", d,
                     "--only", "incast_*", "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in obj["scenarios"]] == \
            ["incast_a", "incast_b"]

    def test_only_scopes_record_and_check(self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        assert main(["gate", "record", "--scenarios-dir", d,
                     "--only", "pingpong_*", "--workers", "1",
                     "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        import os
        assert [os.path.basename(p) for p in obj["recorded"]] == \
            ["pingpong_c.json"]
        assert main(["gate", "check", "--scenarios-dir", d,
                     "--only", "pingpong_*", "--workers", "1",
                     "--json"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in obj["scenarios"]] == ["pingpong_c"]

    def test_unmatched_only_is_structured_error(self, capsys, tmp_path):
        d = self._corpus(tmp_path)
        rc = main(["gate", "check", "--scenarios-dir", d,
                   "--only", "nope_*", "--json"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["error"]["kind"] == "ConfigError"
        assert "matches no scenario" in obj["error"]["message"]


class TestServeCommand:
    """Serve CLI: structured errors without a server, and the in-process
    bench path end to end."""

    def test_submit_without_spec_is_structured(self, capsys, tmp_path):
        rc = main(["serve", "submit", "--dir", str(tmp_path), "--json"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["ok"] is False and obj["command"] == "serve"
        assert "needs --spec" in obj["error"]["message"]

    def test_status_without_server_is_structured(self, capsys, tmp_path):
        rc = main(["serve", "status", "--dir", str(tmp_path / "nope"),
                   "--json"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["error"]["kind"] == "ReproError"
        assert "serve.json" in obj["error"]["message"]

    def test_yaml_spec_without_pyyaml_is_structured(self, capsys,
                                                    tmp_path,
                                                    monkeypatch):
        import sys as _sys
        spec_path = tmp_path / "thing.yaml"
        spec_path.write_text("name: thing\nhosts: 4\n")
        monkeypatch.setitem(_sys.modules, "yaml", None)
        rc = main(["serve", "submit", "--dir", str(tmp_path),
                   "--spec", str(spec_path), "--json"])
        assert rc == 2
        obj = json.loads(capsys.readouterr().out)
        assert obj["error"]["kind"] == "MissingDependency"
        assert "pyyaml" in obj["error"]["message"]

    def test_bench_self_hosted_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        rc = main(["serve", "bench", "--duration", "0.5",
                   "--rate", "6", "--pool", "1", "--out", str(out),
                   "--json"])
        assert rc == 0
        captured = capsys.readouterr().out
        obj = json.loads(captured[:captured.rindex("}") + 1])
        assert obj["scenario"] == "serve_bench"
        assert obj["phases"][0]["phase"] == "fixed"
        report = json.loads(out.read_text())
        load = report["serve_load"]
        assert load["calibration"]["capacity_jobs_per_s"] > 0
        assert load["phases"][0]["offered"] >= 1
