"""CLI coverage: exit codes, output shape, and error paths for repro.cli.

Slow experiments are monkeypatched with cheap stubs — these tests pin
the dispatch plumbing (parser wiring, exit codes, JSON shape), not the
physics behind each experiment.
"""

import json

import pytest

import repro.cli as cli
from repro.cli import EXPERIMENTS, build_parser, main


class TestListAndDispatch:
    def test_list_exits_zero_and_names_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        for extra in ("all", "chaos", "perf", "trace", "metrics"):
            assert extra in out

    def test_no_command_behaves_like_list(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_single_experiment_dispatch(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "fig3",
                            ("stub", lambda args: "FIG3-STUB-OUTPUT"))
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "FIG3-STUB-OUTPUT" in out
        assert "[fig3 ran in" in out

    def test_all_runs_every_experiment_once(self, capsys, monkeypatch):
        ran = []
        for name in list(EXPERIMENTS):
            monkeypatch.setitem(
                EXPERIMENTS, name,
                ("stub", lambda args, _n=name: ran.append(_n) or f"ran {_n}"))
        assert main(["all"]) == 0
        assert ran == list(EXPERIMENTS)
        # fig7's stub still receives the parsed --mb argument.
        out = capsys.readouterr().out
        assert "ran fig7" in out

    def test_fig7_mb_flag_reaches_the_experiment(self, capsys, monkeypatch):
        seen = {}
        monkeypatch.setitem(
            EXPERIMENTS, "fig7",
            ("stub", lambda args: seen.setdefault("mb", args.mb) and "" or ""))
        assert main(["fig7", "--mb", "7"]) == 0
        assert seen["mb"] == 7


class TestChaosCommand:
    def test_tiny_chaos_run_passes_invariants(self, capsys):
        assert main(["chaos", "--seed", "1",
                     "--messages", "4", "--size", "256"]) == 0
        out = capsys.readouterr().out
        assert "chaos[ttcp] seed=1" in out
        assert "4/4 messages" in out

    def test_kvstore_without_recover_is_an_error(self, capsys):
        rc = main(["chaos", "--workload", "kvstore",
                   "--messages", "4", "--size", "256"])
        assert rc == 2
        assert "repro chaos: error:" in capsys.readouterr().err


class TestPerfCommand:
    @pytest.fixture
    def stub_perf(self, monkeypatch, tmp_path):
        """Replace the benchmark internals with instant stubs."""
        import repro.bench.perf as perf
        report = {"workloads": {"w": {"events_per_sec": 100.0}}}
        calls = {}

        monkeypatch.setattr(perf, "run_perf",
                            lambda quick, profile: calls.setdefault(
                                "run", (quick, profile)) or report)
        monkeypatch.setattr(perf, "write_report",
                            lambda rep, path: calls.setdefault(
                                "wrote", path) or path)
        monkeypatch.setattr(perf, "render", lambda rep: "PERF-RENDERED")
        monkeypatch.setattr(perf, "load_baseline", lambda path: None)
        return calls

    def test_perf_without_baseline_exits_zero(self, capsys, stub_perf,
                                              tmp_path):
        out_path = str(tmp_path / "perf.json")
        assert main(["perf", "--quick", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "PERF-RENDERED" in out
        assert "no baseline found" in out
        assert stub_perf["run"] == (True, True)
        assert stub_perf["wrote"] == out_path

    def test_perf_regression_exits_one(self, capsys, monkeypatch, stub_perf,
                                       tmp_path):
        import repro.bench.perf as perf
        monkeypatch.setattr(perf, "load_baseline", lambda path: {"base": 1})
        monkeypatch.setattr(perf, "compare_to_baseline",
                            lambda rep, base, max_regression:
                            (False, ["w: regressed"]))
        assert main(["perf", "--quick",
                     "--out", str(tmp_path / "perf.json")]) == 1
        captured = capsys.readouterr()
        assert "w: regressed" in captured.out
        assert "regressed more than" in captured.err


class TestTraceAndMetricsCommands:
    def test_trace_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        assert main(["trace", "ttcp", "--bytes", "65536",
                     "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "repro trace: ttcp" in out
        for artifact in ("trace.jsonl", "trace.chrome.json",
                         "capture.pcapng", "metrics.txt"):
            assert (out_dir / artifact).is_file(), artifact

    def test_trace_json_summary_shape(self, capsys, tmp_path):
        assert main(["trace", "ttcp", "--bytes", "32768", "--json",
                     "--out-dir", str(tmp_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["workload"] == "ttcp"
        assert summary["bytes_moved"] == 32768
        assert summary["events"] > 0
        assert summary["packets_captured"] > 0
        assert "metrics" in summary
        assert set(summary["artifacts"]) == {
            "trace_jsonl", "trace_chrome", "pcapng", "metrics"}

    def test_metrics_prints_report_without_artifacts(self, capsys, tmp_path,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "pingpong", "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "repro trace: pingpong" in out
        assert "metrics:" in out
        assert "cq.cqe" in out
        # metrics mode is report-only: no artifact files appear.
        assert not list(tmp_path.iterdir())

    def test_metrics_json_has_registry_snapshot(self, capsys):
        assert main(["metrics", "pingpong", "--iterations", "2",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2
        assert summary["metrics"]["verbs.send_posted"] >= 2

    def test_unknown_workload_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "nfsstone"])
        assert exc.value.code == 2

    def test_recorder_uninstalled_after_cli_run(self, capsys, tmp_path,
                                                monkeypatch):
        from repro import obs
        monkeypatch.chdir(tmp_path)
        assert main(["metrics", "ttcp", "--bytes", "32768"]) == 0
        assert obs.RECORDER is None


class TestParser:
    def test_every_experiment_has_a_subparser(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "ttcp"])
        assert args.out_dir == "traces"
        assert args.bytes == 256 * 1024
        assert args.chunk == 8192

    def test_metrics_has_no_out_dir(self):
        args = build_parser().parse_args(["metrics", "ttcp"])
        assert not hasattr(args, "out_dir")
