"""repro serve: the supervised, self-healing simulation service.

The chaos properties pinned here (the ISSUE's acceptance criteria):

(a) SIGKILL a worker mid-job → the job still completes via supervised
    restart, and exactly one result is recorded under its idempotency
    key (one ``done`` journal record, no duplicates);
(b) a scenario that crashes its worker repeatedly is quarantined by the
    circuit breaker while other jobs on the same pool complete;
(c) open-loop arrivals at ~2x capacity → the queue stays bounded,
    excess load is shed with 429 + ``Retry-After``, and accepted jobs
    finish with bounded latency (degradation, not collapse);
(d) SIGKILL the whole server → a restart on the same data dir recovers
    every completed result from the journal and re-queues (or marks
    interrupted) everything that was in flight.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import ConfigError, ReproError
from repro.gate.spec import ScenarioSpec, WorkloadSpec
from repro.serve import (DONE, FAILED, INTERRUPTED, QUARANTINED, QUEUED,
                         AdmissionQueue, Job, JobStore, ReproServer,
                         ServeClient, ServeConfig, read_journal)
from repro.serve.loadgen import run_phase

# ---------------------------------------------------------------------------
# fixtures: specs, executors, servers
# ---------------------------------------------------------------------------


def _spec_dict(name="tiny", **kw):
    defaults = dict(name=name, hosts=4, seed=3,
                    workload=WorkloadSpec(count=1, total_bytes=4096,
                                          chunk=1024),
                    workers=(1,), timeout_s=30.0)
    defaults.update(kw)
    return ScenarioSpec(**defaults).to_dict()


def _ok_result():
    return {"digests": {"net": "abc"}, "violations": [], "workers": [1]}


def _dispatch_exec(marker_dir):
    """The chaos-test executor (runs in the forked child; dispatches on
    the scenario name so one server can see several behaviours):

    * ``poison*``  — SIGKILL itself (a deterministic worker-killer);
    * ``sleepy*``  — sleep far past any test's patience;
    * ``once-*``   — sleep on the first attempt (the test kills it),
      succeed on later ones (marker file = attempt memory);
    * ``raise*``   — deterministic in-worker exception;
    * ``violate*`` — report an invariant violation;
    * ``slow*``    — a fixed small service time (load-gen plant);
    * anything else — succeed immediately.
    """
    def run(spec):
        name = spec["name"]
        if name.startswith("poison"):
            os.kill(os.getpid(), signal.SIGKILL)
        if name.startswith("sleepy"):
            time.sleep(120.0)
        if name.startswith("once-"):
            marker = os.path.join(marker_dir, name + ".marker")
            if not os.path.exists(marker):
                with open(marker, "w") as f:
                    f.write("attempt 1\n")
                time.sleep(120.0)       # the test SIGKILLs this attempt
        if name.startswith("raise"):
            raise ValueError(f"deterministic failure in {name}")
        if name.startswith("violate"):
            return {"digests": {}, "violations": ["tcp.sack: boom"],
                    "workers": [1]}
        if name.startswith("slow"):
            time.sleep(0.25)
        return _ok_result()
    return run


def _server(tmp_path, subdir="serve", **cfg):
    defaults = dict(data_dir=str(tmp_path / subdir), pool_size=2,
                    retry_base_s=0.02, retry_max_s=0.1,
                    snapshot_interval_s=600.0)
    defaults.update(cfg)
    config = ServeConfig(**defaults)
    server = ReproServer(config, executor=_dispatch_exec(str(tmp_path)),
                         fsync=False).start()
    client = ServeClient(server.url)
    client.wait_ready()
    return server, client


def _submit_ok(api, spec, **kw):
    status, data, _ = api.submit(spec, **kw)
    assert status == 202, data
    return data["job"]


def _done_records(journal_path, job_id):
    return [r for r in read_journal(journal_path)
            if r and r["ev"] == "state" and r["id"] == job_id
            and r["state"] == DONE]


# ---------------------------------------------------------------------------
# the store: journal, snapshot, recovery, exactly-once
# ---------------------------------------------------------------------------


class TestJobStore:
    def _job(self, n=1, **kw):
        defaults = dict(id=f"j{n}", key=f"k{n}", client="c",
                        scenario="tiny", spec=_spec_dict(),
                        submitted_at=123.0)
        defaults.update(kw)
        return Job(**defaults)

    def test_journal_replay_restores_state(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root, fsync=False)
        store.submit(self._job(1))
        store.submit(self._job(2))
        store.transition("j1", "running", attempts=1, worker_pid=42)
        store.transition("j1", DONE, result=_ok_result(),
                         finished_at=124.0, worker_pid=None)
        store.close()

        again = JobStore(root, fsync=False)
        assert not again.recovered_torn_tail
        assert again.counts() == {DONE: 1, QUEUED: 1}
        j1 = again.get("j1")
        assert j1.state == DONE and j1.result == _ok_result()
        assert j1.attempts == 1 and j1.worker_pid is None
        assert again.lookup_key("k2").id == "j2"
        assert again.new_job_id() == "j3"   # id counter survives too

    def test_terminal_guard_is_exactly_once(self, tmp_path):
        store = JobStore(str(tmp_path / "store"), fsync=False)
        store.submit(self._job(1))
        assert store.transition("j1", DONE, result=_ok_result())
        # a racing duplicate completion (or a replayed retry) is dropped
        assert not store.transition("j1", FAILED,
                                    error={"kind": "late", "message": "x"})
        assert not store.transition("j1", DONE, result={"digests": {}})
        assert store.get("j1").state == DONE
        assert not store.transition("j999", DONE)   # unknown id: dropped
        records = [r for r in read_journal(store.journal_path)
                   if r["ev"] == "state" and r["state"] == DONE]
        assert len(records) == 1

    def test_snapshot_plus_tail_replay(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root, fsync=False)
        store.submit(self._job(1))
        store.transition("j1", DONE, result=_ok_result())
        store.snapshot()
        store.submit(self._job(2))              # journal tail > snapshot
        store.transition("j2", "running", attempts=1)
        store.close()

        again = JobStore(root, fsync=False)
        assert again.get("j1").state == DONE
        assert again.get("j2").state == "running"
        assert again.get("j2").attempts == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root, fsync=False)
        store.submit(self._job(1))
        store.transition("j1", DONE, result=_ok_result())
        store.close()
        with open(store.journal_path, "a") as f:
            f.write('{"ev": "state", "id": "j1", "sta')   # crash mid-append

        again = JobStore(root, fsync=False)
        assert again.recovered_torn_tail
        assert again.get("j1").state == DONE

    def test_torn_tail_is_truncated_before_reappend(self, tmp_path):
        """Regression: recovery must drop the torn fragment from disk.
        Left in place, the next append concatenates onto it: with one
        record appended the merged line is misread as a fresh torn tail
        on the next boot (silently dropping an acknowledged record);
        with more it becomes interior corruption and the store cannot
        boot at all."""
        root = str(tmp_path / "store")
        store = JobStore(root, fsync=False)
        store.submit(self._job(1))
        store.close()
        with open(store.journal_path, "a") as f:
            f.write('{"ev": "state", "id": "j1", "sta')   # crash mid-append

        recovered = JobStore(root, fsync=False)
        assert recovered.recovered_torn_tail
        # exactly one record after recovery: the silent-drop shape
        assert recovered.transition("j1", DONE, result=_ok_result())
        recovered.close()

        again = JobStore(root, fsync=False)
        assert not again.recovered_torn_tail
        assert again.get("j1").state == DONE     # the ack'd record survived
        again.submit(self._job(2))      # several records: the no-boot shape
        again.close()

        third = JobStore(root, fsync=False)
        assert not third.recovered_torn_tail
        assert third.get("j1").state == DONE
        assert third.get("j2") is not None

    def test_corrupt_interior_line_raises(self, tmp_path):
        root = str(tmp_path / "store")
        store = JobStore(root, fsync=False)
        store.submit(self._job(1))
        store.close()
        with open(store.journal_path) as f:
            good = f.read()
        with open(store.journal_path, "w") as f:
            f.write("NOT JSON\n" + good)
        with pytest.raises(ConfigError, match="corrupt journal"):
            JobStore(root, fsync=False)

    def test_duplicate_ids_and_keys_refused(self, tmp_path):
        store = JobStore(str(tmp_path / "store"), fsync=False)
        store.submit(self._job(1))
        with pytest.raises(ConfigError, match="duplicate job id"):
            store.submit(self._job(1))
        with pytest.raises(ConfigError, match="duplicate job key"):
            store.submit(self._job(2, key="k1"))


# ---------------------------------------------------------------------------
# admission control (pure unit)
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def _job(self, n, client="c"):
        return Job(id=f"j{n}", key=f"k{n}", client=client, scenario="t",
                   spec={}, submitted_at=0.0)

    def test_bounded_queue_sheds_with_retry_after(self):
        q = AdmissionQueue(max_queue=2, client_cap=10, pool_size=1,
                           service_time_guess_s=2.0)
        assert q.offer(self._job(1)) is None
        assert q.offer(self._job(2)) is None
        shed = q.offer(self._job(3))
        assert shed["kind"] == "queue_full"
        assert 1 <= shed["retry_after_s"] <= 60
        assert q.depth() == 2 and q.high_water == 2

    def test_client_cap_is_per_client(self):
        q = AdmissionQueue(max_queue=10, client_cap=1, pool_size=1)
        assert q.offer(self._job(1, "alice")) is None
        assert q.offer(self._job(2, "alice"))["kind"] == "client_cap"
        assert q.offer(self._job(3, "bob")) is None      # bob unaffected
        q.take()
        q.release_client("alice")                         # terminal
        assert q.offer(self._job(4, "alice")) is None

    def test_restore_bypasses_every_gate(self):
        q = AdmissionQueue(max_queue=1, client_cap=1, pool_size=1)
        assert q.offer(self._job(1)) is None
        q.restore(self._job(2))         # retry/recovery re-entry
        assert q.depth() == 2           # over max_queue, by design
        q.close()
        q.restore(self._job(3))         # even while draining
        assert q.depth() == 3

    def test_closed_queue_sheds_as_draining(self):
        q = AdmissionQueue(max_queue=10, client_cap=10, pool_size=1)
        q.close()
        assert q.offer(self._job(1))["kind"] == "draining"
        assert q.take() is None

    def test_retry_after_tracks_service_time(self):
        q = AdmissionQueue(max_queue=10, client_cap=10, pool_size=2,
                           service_time_guess_s=1.0)
        for n in range(6):
            q.offer(self._job(n))
        slow = q.retry_after_s()
        for _ in range(20):
            q.note_service_time(0.01)   # EWMA converges toward 10ms
        assert q.retry_after_s() <= slow
        assert q.retry_after_s() >= 1   # clamp floor

    def test_fifo_take_and_push_front(self):
        q = AdmissionQueue(max_queue=10, client_cap=10, pool_size=1)
        q.offer(self._job(1))
        q.offer(self._job(2))
        first = q.take()
        assert first.id == "j1"
        q.push_front(first)
        assert q.take().id == "j1" and q.take().id == "j2"


# ---------------------------------------------------------------------------
# the HTTP API surface
# ---------------------------------------------------------------------------


class TestServeAPI:
    def test_submit_run_fetch_roundtrip(self, tmp_path):
        server, client = _server(tmp_path)
        try:
            job = _submit_ok(client, _spec_dict(), key="r1",
                             client="alice")
            done = client.wait(job["id"], timeout_s=20)
            assert done["state"] == DONE
            assert done["attempts"] == 1
            assert done["result"]["digests"] == {"net": "abc"}
            assert done["error"] is None
            # lookup by id, by key, and via the index all agree
            assert client.job(job["id"])[1]["job"]["state"] == DONE
            status, data, _ = client.request(
                "GET", f"/jobs?key=r1")
            assert status == 200 and data["job"]["id"] == job["id"]
            index = client.jobs()
            assert index["counts"] == {DONE: 1}
        finally:
            server.drain_and_stop(5)

    def test_idempotent_key_and_conflicts(self, tmp_path):
        server, client = _server(tmp_path)
        try:
            spec = _spec_dict()
            job = _submit_ok(client, spec, key="idem")
            # same key + same spec: 200, the same job, no second run
            status, data, _ = client.submit(spec, key="idem")
            assert status == 200 and data["duplicate"]
            assert data["job"]["id"] == job["id"]
            # same key + different spec: 409
            status, data, _ = client.submit(_spec_dict(seed=99),
                                            key="idem")
            assert status == 409
            assert data["error"]["kind"] == "key_conflict"
            assert data["error"]["job_id"] == job["id"]
        finally:
            server.drain_and_stop(5)

    def test_invalid_submissions_are_structured_400s(self, tmp_path):
        server, client = _server(tmp_path)
        try:
            status, data, _ = client.request("POST", "/jobs", {"no": 1})
            assert status == 400
            assert data["error"]["kind"] == "bad_request"
            status, data, _ = client.submit({"name": "x", "bogus": 1})
            assert status == 400     # ScenarioSpec validation, by type
            assert data["error"]["kind"] == "ConfigError"
            conn_status, data, _ = client.request("GET", "/nope")
            assert conn_status == 404
            status, data, _ = client.request("POST", "/jobs/j1/x")
            assert status == 404
            status, data, _ = client.request("PUT", "/jobs")
            assert status == 405
        finally:
            server.drain_and_stop(5)

    def test_health_ready_metrics(self, tmp_path):
        server, client = _server(tmp_path)
        try:
            assert client.healthz()[0] == 200
            status, ready = client.readyz()
            assert status == 200
            assert ready["pool_size"] == 2
            _submit_ok(client, _spec_dict(), key="m1")
            client.wait(client.jobs()["jobs"][0]["id"], timeout_s=20)
            metricz = client.metricz()
            assert metricz["jobs"] == {DONE: 1}
            assert metricz["metrics"]["serve.accepted"] == 1
        finally:
            server.drain_and_stop(5)

    def test_drain_flips_readiness_and_sheds(self, tmp_path):
        server, client = _server(tmp_path)
        _submit_ok(client, _spec_dict(), key="d1")
        status, _ = client.drain()
        assert status == 202
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not server._stopped:
            time.sleep(0.05)
        assert server._stopped
        # everything already submitted finished; nothing was orphaned
        assert server.store.get("j1").state == DONE
        assert server.supervisor.running_jobs() == []

    def test_drain_kills_stragglers_as_interrupted(self, tmp_path):
        server, client = _server(tmp_path, pool_size=1)
        job = _submit_ok(client, _spec_dict(name="sleepy"), key="s1")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline \
                and not server.supervisor.worker_pids():
            time.sleep(0.02)
        pids = server.supervisor.worker_pids()
        assert pids
        assert server.drain_and_stop(0.3) == 1
        record = server.store.get(job["id"])
        assert record.state == INTERRUPTED
        assert record.error["kind"] == "drain_timeout"
        for pid in pids:                       # no orphaned children
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


# ---------------------------------------------------------------------------
# supervision chaos: the acceptance criteria
# ---------------------------------------------------------------------------


class TestSupervisionChaos:
    def _wait_worker(self, server, timeout_s=10.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            pids = server.supervisor.worker_pids()
            if pids:
                return pids[0]
            time.sleep(0.02)
        raise AssertionError("no worker started")

    def test_sigkilled_worker_restarts_exactly_once(self, tmp_path):
        """(a) kill the forked worker mid-job: the supervisor restarts
        the attempt with backoff and exactly one result is journaled."""
        server, client = _server(tmp_path, pool_size=1)
        try:
            job = _submit_ok(client, _spec_dict(name="once-a"),
                             key="chaos-a")
            pid = self._wait_worker(server)
            os.kill(pid, signal.SIGKILL)
            done = client.wait(job["id"], timeout_s=30)
            assert done["state"] == DONE
            assert done["attempts"] == 2          # killed once, retried
            assert done["result"] == _ok_result()
            # exactly-once: a single done record under the key
            assert len(_done_records(server.store.journal_path,
                                     job["id"])) == 1
            status, data, _ = client.submit(_spec_dict(name="once-a"),
                                            key="chaos-a")
            assert status == 200 and data["duplicate"]
            assert server.metrics.counter("serve.retries").value == 1
        finally:
            server.drain_and_stop(5)

    def test_poison_scenario_is_quarantined(self, tmp_path):
        """(b) a scenario that kills its worker every time trips the
        breaker and is quarantined; other jobs complete untouched."""
        server, client = _server(tmp_path, pool_size=2, breaker_deaths=3,
                                 max_attempts=5)
        try:
            poison = _submit_ok(client, _spec_dict(name="poison-x"),
                                key="px")
            good = [_submit_ok(client, _spec_dict(), key=f"g{i}",
                               client=f"c{i}")
                    for i in range(3)]
            record = client.wait(poison["id"], timeout_s=30)
            assert record["state"] == QUARANTINED
            assert record["error"]["kind"] == "quarantined"
            assert record["attempts"] == 3        # breaker_deaths deaths
            for g in good:
                assert client.wait(g["id"], timeout_s=30)["state"] == DONE
            # while the breaker is open, dispatch quarantines instantly
            again = _submit_ok(client, _spec_dict(name="poison-x"),
                               key="px2")
            record = client.wait(again["id"], timeout_s=30)
            assert record["state"] == QUARANTINED
            assert record["attempts"] == 0        # never even forked
            assert "cooldown" in record["error"]["message"]
            deaths = server.metrics.counter("serve.worker_deaths").value
            assert deaths == 3                    # px2 cost zero deaths
        finally:
            server.drain_and_stop(5)

    def test_wedged_worker_is_escalated_then_exhausted(self, tmp_path):
        server, client = _server(tmp_path, pool_size=1, max_attempts=2,
                                 breaker_deaths=10, default_timeout_s=0.3)
        try:
            spec = _spec_dict(name="sleepy-w")
            spec.pop("timeout_s")
            job = _submit_ok(client, spec, key="w1")
            record = client.wait(job["id"], timeout_s=30)
            assert record["state"] == FAILED
            assert record["error"]["kind"] == "retry_exhausted"
            assert "wedged" in record["error"]["message"]
            assert record["attempts"] == 2
            assert server.metrics.counter(
                "serve.worker_wedged").value == 2
        finally:
            server.drain_and_stop(5)

    def test_deterministic_failures_do_not_retry(self, tmp_path):
        server, client = _server(tmp_path)
        try:
            boom = _submit_ok(client, _spec_dict(name="raise-z"),
                              key="e1")
            record = client.wait(boom["id"], timeout_s=30)
            assert record["state"] == FAILED
            assert record["error"]["kind"] == "ValueError"
            assert record["attempts"] == 1        # no retry: reproducible
            bad = _submit_ok(client, _spec_dict(name="violate-z"),
                             key="e2")
            record = client.wait(bad["id"], timeout_s=30)
            assert record["state"] == FAILED
            assert record["error"]["kind"] == "invariant_failed"
            assert "tcp.sack" in record["error"]["message"]
            # healthy-process failures never count toward quarantine
            assert server.metrics.counter(
                "serve.worker_deaths").value == 0
        finally:
            server.drain_and_stop(5)


# ---------------------------------------------------------------------------
# overload: open-loop Poisson arrivals at 2x capacity
# ---------------------------------------------------------------------------


class TestOverload:
    def test_overload_sheds_bounded_and_recovers(self, tmp_path):
        """(c) drive ~2x capacity: bounded queue, 429 + Retry-After on
        every shed, and the accepted jobs all finish (bounded latency).
        """
        max_queue = 4
        server, client = _server(tmp_path, pool_size=1,
                                 max_queue=max_queue, client_cap=100)
        try:
            spec = _spec_dict(name="slow-load")
            # capacity = 1 worker / 0.25s service = 4 jobs/s; drive ~4x
            phase = run_phase(client, spec, rate_per_s=16.0,
                              duration_s=1.0, seed=7, phase="2x",
                              wait_timeout_s=30.0)
            assert phase["offered"] >= 8
            assert phase["accepted"] >= 1
            assert phase["shed"] > 0                        # overload bit
            assert phase["errors"] == 0
            # every shed came with honest back-pressure advice
            assert phase["shed_with_retry_after"] == phase["shed"]
            # the queue never grew past its bound
            assert phase["max_queue_depth"] <= max_queue
            assert server.queue.high_water <= max_queue
            # every accepted job finished within the bounded wait
            assert phase["unfinished_after_wait"] == 0
            assert phase["latency_s"]["count"] == phase["accepted"]
            assert phase["latency_s"]["max"] < 30.0
            shed_counters = [
                v for k, v in server.metrics.snapshot().items()
                if k.startswith("serve.shed.")]
            assert sum(shed_counters) == phase["shed"]
        finally:
            server.drain_and_stop(10)


# ---------------------------------------------------------------------------
# whole-server crash + restart recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_crash_recovers_results_and_requeues(self, tmp_path):
        """(d) SIGKILL the server (simulated in-process: supervision
        frozen, workers killed, no further journal writes): a restart
        on the same data dir serves completed results from the journal
        and re-queues what was caught mid-flight."""
        server, client = _server(tmp_path, pool_size=1)
        finished = _submit_ok(client, _spec_dict(), key="safe")
        assert client.wait(finished["id"], timeout_s=20)["state"] == DONE
        running = _submit_ok(client, _spec_dict(name="sleepy-r"),
                             key="caught-running")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline \
                and not server.supervisor.worker_pids():
            time.sleep(0.02)
        pids = server.supervisor.worker_pids()
        assert pids
        queued = _submit_ok(client, _spec_dict(name="sleepy-q"),
                            key="caught-queued")
        server.simulate_crash()
        for pid in pids:                       # no orphaned children
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

        # restart on the same data dir with a benign executor
        config = ServeConfig(data_dir=str(tmp_path / "serve"),
                             pool_size=1, retry_base_s=0.02)
        revived = ReproServer(config, executor=lambda s: _ok_result(),
                              fsync=False)
        store = revived.store
        # the completed result survived with its payload
        assert store.get(finished["id"]).state == DONE
        assert store.get(finished["id"]).result == _ok_result()
        # the mid-run job was re-queued with a structured explanation
        caught = store.get(running["id"])
        assert caught.state == QUEUED
        assert caught.error["kind"] == "interrupted_retry"
        assert store.get(queued["id"]).state == QUEUED
        assert revived.metrics.counter(
            "serve.recovered_requeued").value == 2
        # ...and once supervision resumes, everything reaches done
        revived.start()
        client2 = ServeClient(revived.url)
        client2.wait_ready()
        try:
            assert client2.wait(running["id"],
                                timeout_s=20)["state"] == DONE
            assert client2.wait(queued["id"],
                                timeout_s=20)["state"] == DONE
            # idempotency keys survived the crash too
            status, data, _ = client2.submit(_spec_dict(), key="safe")
            assert status == 200 and data["duplicate"]
        finally:
            revived.drain_and_stop(5)

    def test_crash_with_no_attempts_left_marks_interrupted(self,
                                                           tmp_path):
        server, client = _server(tmp_path, pool_size=1, max_attempts=1)
        job = _submit_ok(client, _spec_dict(name="sleepy-i"), key="i1")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline \
                and not server.supervisor.worker_pids():
            time.sleep(0.02)
        server.simulate_crash()

        config = ServeConfig(data_dir=str(tmp_path / "serve"),
                             pool_size=1, max_attempts=1)
        revived = ReproServer(config, fsync=False)
        record = revived.store.get(job["id"])
        assert record.state == INTERRUPTED
        assert record.error["kind"] == "interrupted"
        assert revived.metrics.counter(
            "serve.recovered_interrupted").value == 1
        revived.store.close()


# ---------------------------------------------------------------------------
# signal-driven shutdown of the serve CLI process (satellite 3)
# ---------------------------------------------------------------------------


class TestServeSignals:
    def test_sigterm_drains_the_cli_server(self, tmp_path):
        """`repro serve run` under SIGTERM: drains, reaps every forked
        worker, exits 0 — no orphans, no partial journal."""
        import subprocess
        import sys
        data = tmp_path / "serve-sig"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "run",
             "--dir", str(data), "--pool", "1", "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            start_new_session=True)
        try:
            endpoint = data / "serve.json"
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline \
                    and not endpoint.exists():
                time.sleep(0.05)
            assert endpoint.exists(), "server never wrote serve.json"
            url = json.loads(endpoint.read_text())["url"]
            client = ServeClient(url)
            client.wait_ready()
            job = _submit_ok(client, _spec_dict(), key="sig1")
            assert client.wait(job["id"], timeout_s=30)["state"] == DONE
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out.decode()
            assert b"drained and stopped" in out
            # the whole process group is gone: no orphaned workers
            with pytest.raises(ProcessLookupError):
                os.killpg(os.getpgid(proc.pid)
                          if proc.poll() is None else proc.pid, 0)
            # the journal closed cleanly and replays
            store = JobStore(str(data), fsync=False)
            assert store.get(job["id"]).state == DONE
            assert not store.recovered_torn_tail
            store.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
