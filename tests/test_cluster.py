"""repro.cluster: sharded runs are bit-for-bit the single-process run.

The contract under test is the strongest the subsystem makes: for the
same :class:`ClusterSpec`, every observable — CQE streams, wire traces
(bytes *and* timestamps), merged metrics, final clocks — is identical
whether the fabric runs in one kernel or split across shards, in
process or in forked workers.  ``assert_equivalent`` raises naming the
first divergence, so a pass here is the full bit-identity claim.
"""

import json

import pytest

from repro.cluster import (ClusterError, ClusterSpec, FlowSpec, lookahead,
                           make_flows, partition_blueprint, run_cluster,
                           run_single, assert_equivalent)
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.tools.inspect import merge_metrics_dumps


def ttcp_spec(hosts=4, flows=2, seed=3, **kw):
    kw.setdefault("topology", "fat-tree")
    kw.setdefault("hosts_per_edge", 2)
    kw.setdefault("metrics", True)
    kw.setdefault("horizon", 5_000_000.0)
    return ClusterSpec(
        hosts=hosts,
        flows=make_flows("ttcp", hosts, flows, seed=seed,
                         total_bytes=16384, chunk=4096),
        **kw)


class TestEquivalence:
    def test_two_shards_match_oracle_ttcp(self):
        spec = ttcp_spec(capture_hosts=("h0", "h3"))
        oracle = run_single(spec)
        sharded = run_cluster(spec, 2)
        assert_equivalent(oracle, sharded)
        assert sharded.trunk_msgs > 0, "flows never crossed the cut"
        assert sharded.events == oracle.events

    def test_four_shards_match_oracle(self):
        spec = ttcp_spec(hosts=8, flows=4, seed=5)
        assert_equivalent(run_single(spec), run_cluster(spec, 4))

    def test_pingpong_on_a_ring(self):
        spec = ClusterSpec(
            topology="ring", hosts=6, ring_switches=3, metrics=True,
            horizon=5_000_000.0,
            flows=make_flows("pingpong", 6, 2, seed=11, iterations=4,
                             msg_size=128))
        assert_equivalent(run_single(spec), run_cluster(spec, 3))

    def test_forked_workers_match_oracle(self):
        # Exercises TrunkMsg/Packet pickling and the pipe protocol.
        spec = ttcp_spec(capture_hosts=("h1",))
        oracle = run_single(spec)
        sharded = run_cluster(spec, 2, processes=True)
        assert_equivalent(oracle, sharded)

    def test_flow_records_carry_full_cqe_streams(self):
        spec = ttcp_spec()
        result = run_cluster(spec, 2)
        for fid, record in result.flows.items():
            assert record["rx_bytes"] == 16384
            assert record["tx_bytes"] == 16384
            assert record["client_cqes"] and record["server_cqes"]
            # CQE tuples: (wr_id, qp_num, opcode, status, bytes, time)
            for cqe in record["server_cqes"]:
                assert cqe[3] == "SUCCESS" and cqe[2] == "RECV"

    def test_divergence_is_named(self):
        spec = ttcp_spec()
        a = run_single(spec)
        b = run_cluster(spec, 2)
        b.flows[0]["rx_bytes"] += 1
        with pytest.raises(ClusterError, match="rx_bytes"):
            assert_equivalent(a, b)

    @pytest.mark.parametrize("engine", ["host", "nic"])
    def test_collective_shards_match_oracle(self, engine):
        from repro.collectives import (COLLECTIVE_FLOW_BASE,
                                       CollectiveWorkSpec, allreduce_oracle,
                                       result_digest)
        spec = ClusterSpec(
            topology="fat-tree", hosts=8, hosts_per_edge=2, metrics=True,
            horizon=10_000_000.0, seed=9,
            collective=CollectiveWorkSpec(engine=engine, algo="allreduce",
                                          vector_len=96, seed=9))
        oracle = run_single(spec)
        for workers in (2, 4):
            sharded = run_cluster(spec, workers)
            assert_equivalent(oracle, sharded)
            assert sharded.trunk_msgs > 0, "ring never crossed the cut"
        expected = result_digest(allreduce_oracle(8, 96, 9))
        for rank in range(8):
            record = oracle.flows[COLLECTIVE_FLOW_BASE + rank]
            assert record["status"] == "SUCCESS"
            assert record["result_digest"] == expected

    def test_collective_rides_with_flows(self):
        # A collective and ordinary flows share one fabric and stay
        # bit-identical under sharding.
        from repro.collectives import (COLLECTIVE_FLOW_BASE,
                                       CollectiveWorkSpec)
        spec = ttcp_spec(
            hosts=8, flows=2, seed=7, horizon=10_000_000.0,
            collective=CollectiveWorkSpec(engine="nic", algo="broadcast",
                                          vector_len=64, seed=7))
        oracle = run_single(spec)
        assert_equivalent(oracle, run_cluster(spec, 2))
        assert oracle.flows[0]["rx_bytes"] == 16384
        digests = {oracle.flows[COLLECTIVE_FLOW_BASE + r]["result_digest"]
                   for r in range(8)}
        assert len(digests) == 1


class TestFailureModes:
    def test_unfinished_flows_fail_loudly(self):
        spec = ttcp_spec(horizon=500.0)    # before clients even start
        with pytest.raises(ClusterError, match="did not finish"):
            run_cluster(spec, 2)

    def test_worker_crash_propagates_with_traceback(self):
        spec = ttcp_spec(horizon=500.0)
        with pytest.raises(ClusterError, match="did not finish|crashed"):
            run_cluster(spec, 2, processes=True)

    def test_partition_rejects_more_shards_than_edges(self):
        bp = ttcp_spec().blueprint()          # 2 edge switches
        with pytest.raises(ConfigError):
            partition_blueprint(bp, 3)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(topology="torus", hosts=4).blueprint()

    def test_ring_hosts_must_divide_evenly(self):
        with pytest.raises(ConfigError):
            ClusterSpec(topology="ring", hosts=7,
                        ring_switches=3).blueprint()


class TestPartition:
    def test_hosts_balanced_and_cover_all_switches(self):
        bp = ttcp_spec(hosts=16, flows=2, hosts_per_edge=4).blueprint()
        part = partition_blueprint(bp, 4)
        assert set(part.switch_shard) == set(range(len(bp.switch_ports)))
        sizes = [len(part.hosts_of(bp, s)) for s in range(4)]
        assert sum(sizes) == 16 and min(sizes) >= 1
        assert part.cross_trunks, "4-way cut must cross trunks"

    def test_lookahead_is_min_cut_trunk_latency_floor(self):
        bp = ttcp_spec().blueprint()
        part = partition_blueprint(bp, 2)
        la = lookahead(bp, part)
        min_prop = min(bp.trunks[i][4] for i in part.cross_trunks)
        assert min_prop < la < min_prop + 0.01


class TestMetricsMerge:
    """Satellite: shard-dump merging reproduces a single registry."""

    def _populate(self, reg, ops):
        for kind, name, value in ops:
            if kind == "c":
                reg.counter(name).add(value)
            elif kind == "g":
                reg.gauge(name).set(value)
            else:
                reg.histogram(name).add(value)

    def test_merge_matches_single_registry(self):
        ops = [("c", "pkts", 3), ("c", "pkts", 2), ("c", "drops", 1),
               ("g", "depth", 4.0), ("g", "depth", 9.0), ("g", "depth", 2.0),
               ("h", "lat", 10.0), ("h", "lat", 30.0), ("h", "lat", 20.0)]
        single = MetricsRegistry()
        self._populate(single, ops)
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        self._populate(shard_a, ops[:4])
        self._populate(shard_b, ops[4:])
        merged = merge_metrics_dumps([shard_a.dump(), shard_b.dump()])

        md, sd = merged.dump(), single.dump()
        assert set(md) == set(sd)
        assert md["pkts"] == sd["pkts"]          # counters sum exactly
        assert md["drops"] == sd["drops"]
        # Histograms concatenate: same multiset of samples.
        assert sorted(md["lat"]["samples"]) == sorted(sd["lat"]["samples"])
        # Gauges keep global extremes (last-write does not shard).
        assert md["depth"]["min"] == sd["depth"]["min"] == 2.0
        assert md["depth"]["max"] == sd["depth"]["max"] == 9.0

    def test_merge_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            merge_metrics_dumps([{"x": {"type": "summary", "value": 1}}])

    def test_merge_of_disjoint_names_unions(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only.a").add(1)
        b.histogram("only.b").add(5.0)
        merged = merge_metrics_dumps([a.dump(), b.dump()]).dump()
        assert merged["only.a"]["value"] == 1
        assert merged["only.b"]["samples"] == [5.0]


class TestSpec:
    def test_make_flows_is_seed_deterministic(self):
        assert make_flows("ttcp", 8, 4, seed=9) == \
            make_flows("ttcp", 8, 4, seed=9)
        assert make_flows("ttcp", 8, 4, seed=9) != \
            make_flows("ttcp", 8, 4, seed=10)

    def test_flow_ports_do_not_collide(self):
        flows = make_flows("ttcp", 8, 6, seed=2)
        ports = [f.port for f in flows]
        assert len(set(ports)) == len(ports)

    def test_specs_are_picklable_frozen_data(self):
        import pickle
        spec = ttcp_spec()
        again = pickle.loads(pickle.dumps(spec))
        assert again.flows == spec.flows
        with pytest.raises(Exception):
            spec.flows[0].src = 99                   # frozen


class TestClusterCli:
    def test_cluster_run_json(self, capsys):
        from repro.cli import main
        rc = main(["cluster", "--hosts", "4", "--flows", "2",
                   "--bytes", "8192", "--workers", "2", "--in-process",
                   "--check-determinism", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["workers"] == 2
        assert out["determinism"] == "bit-identical to 1-process oracle"
        assert out["events"] > 0

    def test_cluster_bench_writes_report(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        out = tmp_path / "perf.json"
        rc = main(["cluster", "--bench", "--hosts", "32", "--seed", "7",
                   "--in-process", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        scaling = report["cluster_scaling"]
        assert set(scaling["workers"]) == {"1", "2", "4"}
        assert "cpus_available" in scaling

    def test_cluster_error_exits_nonzero(self, capsys):
        from repro.cli import main
        rc = main(["cluster", "--hosts", "4", "--flows", "1",
                   "--workers", "2", "--in-process",
                   "--horizon", "500"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestSignalShutdown:
    """Operator signals against forked shard workers: a SIGTERM/SIGKILL
    of a worker becomes a typed :class:`WorkerDied` naming the signal,
    and shutdown always reaps every child — no orphans."""

    def _handle(self, shard=0, shards=2):
        from repro.cluster.runner import _ProcessHandle
        return _ProcessHandle(ttcp_spec(), shard, shards)

    @pytest.mark.parametrize("signame", ["SIGTERM", "SIGKILL"])
    def test_signalled_worker_is_a_typed_worker_died(self, signame):
        import os
        import signal as _signal
        from repro.cluster import WorkerDied
        handle = self._handle()
        try:
            handle.start()                     # worker is up and idle
            os.kill(handle._proc.pid, getattr(_signal, signame))
            with pytest.raises(WorkerDied) as err:
                handle.recv_state()
            assert err.value.shard_id == 0
            assert err.value.signal == signame
            assert signame in str(err.value)
            assert err.value.exitcode == -getattr(_signal, signame)
        finally:
            handle.close()
        assert not handle._proc.is_alive()     # reaped, not orphaned
        assert not handle.escalated            # it was already dead

    def test_killed_worker_mid_run_fails_whole_run_and_reaps_all(self):
        import os
        import signal as _signal
        import threading
        import time
        from repro.cluster import WorkerDied
        from repro.cluster.runner import ClusterRunner
        spec = ClusterSpec(
            topology="fat-tree", hosts=4, hosts_per_edge=2,
            horizon=500_000_000.0,
            flows=make_flows("ttcp", 4, 2, seed=3,
                             total_bytes=1 << 20, chunk=4096))
        runner = ClusterRunner(spec, 2, processes=True)
        failures = []

        def drive():
            try:
                runner.run()
            except ClusterError as exc:
                failures.append(exc)

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and not runner.handles:
            time.sleep(0.005)
        assert runner.handles, "run() never spawned workers"
        victim = runner.handles[0]._proc.pid
        os.kill(victim, _signal.SIGKILL)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert failures, "the killed worker was silently tolerated"
        assert isinstance(failures[0], WorkerDied)
        assert failures[0].signal == "SIGKILL"
        # every worker (victim and survivors) was reaped on the way out
        for handle in runner.handles:
            assert not handle._proc.is_alive()
            with pytest.raises(ProcessLookupError):
                os.kill(handle._proc.pid, 0)

    def test_sigint_of_in_process_run_leaves_no_children(self):
        """KeyboardInterrupt (the SIGINT path) during a forked run still
        walks the close() ladder for every handle."""
        import multiprocessing
        from repro.cluster.runner import ClusterRunner
        before = multiprocessing.active_children()
        runner = ClusterRunner(ttcp_spec(), 2, processes=True)

        class Boom(KeyboardInterrupt):
            pass

        original = ClusterRunner._drive

        def interrupted(self, handles):
            raise Boom()

        ClusterRunner._drive = interrupted
        try:
            with pytest.raises(Boom):
                runner.run()
        finally:
            ClusterRunner._drive = original
        assert multiprocessing.active_children() == before
