"""Integration tests: sockets over the host kernel, GigE and GM testbeds,
loopback, and CPU accounting."""

import pytest

from repro.bench.configs import build_gige_pair, build_gm_pair
from repro.errors import ConnectionRefused, SocketError
from repro.hoststack import TcpSocket, UdpSocket, attach_loopback
from repro.hoststack.kernel import HostKernel
from repro.hw import Host
from repro.net.addresses import Endpoint, IPv4Address
from repro.net.packet import BytesPayload, ZeroPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def gige(sim):
    return build_gige_pair(sim)


def run_pair(sim, client_gen, server_gen, until=30_000_000):
    cp = sim.process(client_gen)
    sp = sim.process(server_gen)
    sim.run(until=until)
    assert cp.triggered, "client did not finish"
    assert sp.triggered, "server did not finish"
    if not cp.ok:
        raise cp.value
    if not sp.ok:
        raise sp.value
    return cp.value, sp.value


class TestTcpSockets:
    def test_connect_send_recv(self, sim, gige):
        a, b, _fabric = gige
        results = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(11)
            results["server_got"] = data.to_bytes()
            yield from conn.send(BytesPayload(b"pong"))

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(BytesPayload(b"hello world"))
            reply = yield from sock.recv_exact(4)
            results["client_got"] = reply.to_bytes()

        run_pair(sim, client(), server())
        assert results["server_got"] == b"hello world"
        assert results["client_got"] == b"pong"

    def test_connection_refused(self, sim, gige):
        a, b, _fabric = gige

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            with pytest.raises(ConnectionRefused):
                yield from sock.connect(Endpoint(b.addr, 9999))

        sim.run_process(client(), until=10_000_000)

    def test_bulk_transfer_integrity(self, sim, gige):
        a, b, _fabric = gige
        blob = bytes(range(256)) * 256    # 64 KiB patterned data
        results = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(len(blob))
            results["got"] = data.to_bytes()

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(BytesPayload(blob))

        run_pair(sim, client(), server())
        assert results["got"] == blob

    def test_mss_derived_from_route_mtu(self, sim, gige):
        a, b, _fabric = gige

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            yield from conn.recv(10)

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            # IPv4 over 1500 MTU: MSS 1460 on the wire.
            assert sock.conn.config.mss == 1460
            yield from sock.send(ZeroPayload(10))

        run_pair(sim, client(), server())

    def test_transfer_consumes_cpu(self, sim, gige):
        a, b, _fabric = gige
        a.host.reset_cpu_stats()
        window = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            yield from conn.recv_exact(1_000_000)

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            window["start"] = sim.now
            yield from sock.send(ZeroPayload(1_000_000))
            window["end"] = sim.now

        run_pair(sim, client(), server())
        busy = a.host.cpu.busy_by_category
        assert busy.get("copy", 0) > 0
        assert busy.get("net-tx", 0) > 0
        elapsed = window["end"] - window["start"]
        assert a.host.cpu.busy_time / elapsed > 0.1   # the point of the baseline

    def test_checksum_corruption_detected_and_recovered(self, sim, gige):
        a, b, _fabric = gige
        link = _fabric.host_link("h0")
        state = {"hit": False}

        def corrupt_one(pkt):
            if pkt.payload.length > 100 and not state["hit"]:
                state["hit"] = True
                pkt.corrupted = True     # bit error on the wire
            return False

        link.set_loss(a.nic.attachment, corrupt_one)
        results = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(5000)
            results["got"] = data.length

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(ZeroPayload(5000))

        run_pair(sim, client(), server())
        assert state["hit"]
        assert results["got"] == 5000
        assert b.kernel.stack.checksum_errors >= 1
        assert a.kernel.stack.tcp.connections  # still alive

    def test_socket_misuse_raises(self, sim, gige):
        a, _b, _fabric = gige
        sock = TcpSocket(a.kernel, a.addr)
        with pytest.raises(SocketError):
            sock.listen(1)
            sock.listen(2)

    def test_close_propagates_eof(self, sim, gige):
        a, b, _fabric = gige
        results = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            data = yield from conn.recv(100)
            results["data"] = data.length
            eof = yield from conn.recv(100)
            results["eof"] = eof.length

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            yield from sock.send(BytesPayload(b"bye"))
            sock.close()

        run_pair(sim, client(), server())
        assert results["data"] == 3
        assert results["eof"] == 0


class TestUdpSockets:
    def test_datagram_roundtrip(self, sim, gige):
        a, b, _fabric = gige
        results = {}

        def server():
            sock = UdpSocket(b.kernel, b.addr)
            sock.bind(7000)
            dg = yield from sock.recvfrom()
            results["got"] = dg.payload.to_bytes()
            reply = UdpSocket(b.kernel, b.addr)
            reply.bind()
            yield from reply.sendto(dg.src, BytesPayload(b"ack!"))

        def client():
            sock = UdpSocket(a.kernel, a.addr)
            sock.bind(7001)
            yield from sock.sendto(Endpoint(b.addr, 7000), BytesPayload(b"data"))
            dg = yield from sock.recvfrom()
            results["reply"] = dg.payload.to_bytes()

        run_pair(sim, client(), server())
        assert results["got"] == b"data"
        assert results["reply"] == b"ack!"

    def test_unbound_port_drops(self, sim, gige):
        a, b, _fabric = gige

        def client():
            sock = UdpSocket(a.kernel, a.addr)
            sock.bind()
            yield from sock.sendto(Endpoint(b.addr, 4242), ZeroPayload(64))

        sim.run_process(client(), until=1_000_000)
        sim.run(until=sim.now + 1_000_000)
        assert b.kernel.stack.udp.rx_no_port == 1


class TestLoopback:
    def test_loopback_roundtrip(self, sim):
        host = Host(sim, "solo")
        kernel = HostKernel(sim, host)
        addr = IPv4Address.parse("127.0.0.1")
        attach_loopback(kernel, addr)
        results = {}

        def server():
            lsock = TcpSocket(kernel, addr)
            lsock.listen(6000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(4)
            yield from conn.send(data)

        def client():
            sock = TcpSocket(kernel, addr)
            yield from sock.connect(Endpoint(addr, 6000))
            yield from sock.send(BytesPayload(b"loop"))
            echo = yield from sock.recv_exact(4)
            results["echo"] = echo.to_bytes()

        run_pair(sim, client(), server())
        assert results["echo"] == b"loop"

    def test_loopback_rtt_matches_table1_scale(self, sim):
        # Table 1: ~29.9 us host overhead per send+receive (= RTT/2).
        host = Host(sim, "solo")
        kernel = HostKernel(sim, host)
        addr = IPv4Address.parse("127.0.0.1")
        attach_loopback(kernel, addr)
        rtts = []

        def server():
            lsock = TcpSocket(kernel, addr)
            lsock.listen(6000)
            conn = yield from lsock.accept()
            while True:
                data = yield from conn.recv(1)
                if data.length == 0:
                    return
                yield from conn.send(data)

        def client():
            sock = TcpSocket(kernel, addr)
            yield from sock.connect(Endpoint(addr, 6000))
            for _ in range(50):
                t0 = sim.now
                yield from sock.send(ZeroPayload(1))
                yield from sock.recv_exact(1)
                rtts.append(sim.now - t0)
            sock.close()

        run_pair(sim, client(), server())
        overhead = (sum(rtts) / len(rtts)) / 2
        assert 20 <= overhead <= 45    # same scale as the paper's 29.9 us


class TestGmBaseline:
    def test_gm_pair_exchanges_data(self, sim):
        a, b, _fabric = build_gm_pair(sim)
        results = {}

        def server():
            lsock = TcpSocket(b.kernel, b.addr)
            lsock.listen(5000)
            conn = yield from lsock.accept()
            data = yield from conn.recv_exact(100_000)
            results["got"] = data.length

        def client():
            sock = TcpSocket(a.kernel, a.addr)
            yield from sock.connect(Endpoint(b.addr, 5000))
            # 9000 MTU: bigger segments than GigE.
            assert sock.conn.config.mss == 8960
            yield from sock.send(ZeroPayload(100_000))

        run_pair(sim, client(), server())
        assert results["got"] == 100_000
        assert a.nic.firmware.items_completed > 0   # LANai fw on the path
