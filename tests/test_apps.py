"""Tests for the application layer: ping-pong, ttcp, NBD."""

import pytest

from repro.apps import (qpip_tcp_rtt, qpip_udp_rtt, socket_tcp_rtt,
                        socket_udp_rtt, qpip_ttcp, socket_ttcp)
from repro.apps.nbd import (DiskModel, NBD_PORT, NBDCommand, NBDReply,
                            NBDRequest, NbdQpipClient, NbdSocketClient,
                            qpip_nbd_server, socket_nbd_server)
from repro.bench.configs import build_gige_pair, build_qpip_pair
from repro.errors import NBDError
from repro.sim import Simulator
from repro.units import MB


@pytest.fixture
def sim():
    return Simulator()


class TestPingPong:
    def test_socket_tcp_rtt_stable(self, sim):
        a, b, _f = build_gige_pair(sim)
        r = socket_tcp_rtt(sim, a, b, iterations=30)
        assert len(r.rtts) == 30
        assert r.mean > 0
        # Steady state: post-warmup RTTs are tightly clustered.
        tail = r.rtts[5:]
        assert max(tail) - min(tail) < 0.5 * r.mean

    def test_socket_udp_faster_than_tcp(self, sim):
        a, b, _f = build_gige_pair(sim)
        tcp = socket_tcp_rtt(sim, a, b, iterations=30)
        sim2 = Simulator()
        a2, b2, _f2 = build_gige_pair(sim2)
        udp = socket_udp_rtt(sim2, a2, b2, iterations=30)
        assert udp.mean < tcp.mean

    def test_qpip_rtt_beats_sockets(self, sim):
        a, b, _f = build_qpip_pair(sim)
        q = qpip_tcp_rtt(sim, a, b, iterations=30)
        sim2 = Simulator()
        a2, b2, _f2 = build_gige_pair(sim2)
        s = socket_tcp_rtt(sim2, a2, b2, iterations=30)
        assert q.mean < s.mean

    def test_rtt_grows_with_message_size(self, sim):
        a, b, _f = build_qpip_pair(sim)
        small = qpip_tcp_rtt(sim, a, b, iterations=20, msg_size=1)
        sim2 = Simulator()
        a2, b2, _f2 = build_qpip_pair(sim2)
        big = qpip_tcp_rtt(sim2, a2, b2, iterations=20, msg_size=8192)
        assert big.mean > small.mean + 30   # DMA + wire time both ways

    def test_median(self):
        from repro.apps.pingpong import RttResult
        assert RttResult([3.0, 1.0, 2.0]).median == 2.0
        assert RttResult([]).median == 0.0


class TestTtcp:
    def test_socket_ttcp_moves_all_bytes(self, sim):
        a, b, _f = build_gige_pair(sim)
        r = socket_ttcp(sim, a, b, total_bytes=1 * MB)
        assert r.bytes_moved == 1 * MB
        assert r.mb_per_sec > 5
        assert 0 < r.tx_cpu_utilization <= 1

    def test_qpip_ttcp_cpu_advantage(self, sim):
        a, b, _f = build_qpip_pair(sim)
        q = qpip_ttcp(sim, a, b, total_bytes=2 * MB)
        sim2 = Simulator()
        a2, b2, _f2 = build_gige_pair(sim2)
        s = socket_ttcp(sim2, a2, b2, total_bytes=2 * MB)
        assert q.mb_per_sec > s.mb_per_sec
        assert q.tx_cpu_utilization < s.tx_cpu_utilization / 5

    def test_qpip_queue_depth_matters(self, sim):
        a, b, _f = build_qpip_pair(sim)
        shallow = qpip_ttcp(sim, a, b, total_bytes=2 * MB, queue_depth=1)
        sim2 = Simulator()
        a2, b2, _f2 = build_qpip_pair(sim2)
        deep = qpip_ttcp(sim2, a2, b2, total_bytes=2 * MB, queue_depth=8)
        assert deep.mb_per_sec > shallow.mb_per_sec


class TestNbdProtocol:
    def test_request_roundtrip(self):
        r = NBDRequest(NBDCommand.WRITE, handle=42, offset=1 << 30,
                       length=128 * 1024)
        decoded = NBDRequest.decode(r.encode())
        assert decoded == r
        assert len(r.encode()) == 28

    def test_reply_roundtrip(self):
        r = NBDReply(handle=7, error=2)
        decoded = NBDReply.decode(r.encode())
        assert decoded == r
        assert len(r.encode()) == 16

    def test_bad_magic_rejected(self):
        with pytest.raises(NBDError):
            NBDRequest.decode(b"\x00" * 28)
        with pytest.raises(NBDError):
            NBDReply.decode(b"\x00" * 16)

    def test_short_buffers_rejected(self):
        with pytest.raises(NBDError):
            NBDRequest.decode(b"\x00" * 10)

    def test_unknown_command_rejected(self):
        import struct
        from repro.apps.nbd.protocol import REQUEST_MAGIC
        raw = struct.pack("!IIQQI", REQUEST_MAGIC, 99, 0, 0, 0)
        with pytest.raises(NBDError):
            NBDRequest.decode(raw)


class TestDiskModel:
    def test_small_writes_absorbed_by_cache(self, sim):
        disk = DiskModel(sim, dirty_limit=1 << 20)
        assert disk.write(64 * 1024) is None

    def test_dirty_limit_applies_backpressure(self, sim):
        disk = DiskModel(sim, dirty_limit=128 * 1024)
        gates = [disk.write(128 * 1024) for _ in range(4)]
        assert any(g is not None for g in gates)

        def waiter():
            for g in gates:
                if g is not None:
                    yield g
            return sim.now

        t = sim.run_process(waiter())
        assert t > 0    # had to wait for the platter

    def test_sync_waits_for_all_dirty_data(self, sim):
        disk = DiskModel(sim)
        disk.write(512 * 1024)

        def syncer():
            yield disk.sync()
            return sim.now

        t = sim.run_process(syncer())
        assert disk.dirty_bytes == 0
        assert disk.bytes_written == 512 * 1024
        # 512 KiB at 50 B/µs plus per-IO overhead.
        assert t >= 512 * 1024 / 50

    def test_sync_immediate_when_clean(self, sim):
        disk = DiskModel(sim)

        def syncer():
            yield disk.sync()
            return sim.now

        assert sim.run_process(syncer()) == 0.0

    def test_throughput_converges_to_disk_bandwidth(self, sim):
        disk = DiskModel(sim, write_bandwidth=10.0, per_io_overhead=0.0,
                         dirty_limit=64 * 1024)
        total = 4 * MB

        def producer():
            offset = 0
            while offset < total:
                gate = disk.write(64 * 1024)
                if gate is not None:
                    yield gate
                offset += 64 * 1024
            yield disk.sync()
            return sim.now

        t = sim.run_process(producer())
        rate = total / t
        assert rate == pytest.approx(10.0, rel=0.1)


class TestNbdEndToEnd:
    def _roundtrip(self, system: str, total=4 * MB):
        sim = Simulator()
        if system == "qpip":
            client, server, _f = build_qpip_pair(sim, mtu=9000)
            disk = DiskModel(sim)
            sim.process(qpip_nbd_server(sim, server, disk))
            nbd = NbdQpipClient(client, server.addr, NBD_PORT)
        else:
            client, server, _f = build_gige_pair(sim)
            disk = DiskModel(sim)
            sim.process(socket_nbd_server(sim, server, disk))
            nbd = NbdSocketClient(client, server.addr, NBD_PORT)
        results = {}

        def run():
            yield from nbd.connect()
            results["write"] = yield from nbd.run_phase("write", total)
            yield disk.sync()
            results["read"] = yield from nbd.run_phase("read", total)
            yield from nbd.disconnect()

        cp = sim.process(run())
        sim.run(until=600_000_000)
        assert cp.triggered, f"{system} NBD hung"
        if not cp.ok:
            raise cp.value
        return results, disk

    def test_socket_nbd_roundtrip(self):
        results, disk = self._roundtrip("socket")
        assert results["write"].bytes_moved == 4 * MB
        assert results["read"].bytes_moved == 4 * MB
        assert disk.bytes_written == 4 * MB     # everything hit the platter
        assert results["write"].mb_per_sec > 1
        assert results["read"].mb_per_sec > results["write"].mb_per_sec

    def test_qpip_nbd_roundtrip(self):
        results, disk = self._roundtrip("qpip")
        assert disk.bytes_written == 4 * MB
        assert results["read"].mb_per_sec > results["write"].mb_per_sec
        # The QPIP client's CPU time is dominated by filesystem work,
        # not network stack (the paper's headline for Figure 7).
        r = results["read"]
        assert r.fs_cpu_busy_us / r.client_cpu_busy_us > 0.5

    def test_qpip_beats_socket_nbd(self):
        q, _ = self._roundtrip("qpip")
        s, _ = self._roundtrip("socket")
        assert q["read"].mb_per_sec > s["read"].mb_per_sec
        assert q["read"].cpu_effectiveness > 2 * s["read"].cpu_effectiveness


class TestNbdNegotiation:
    def test_negotiation_roundtrip(self):
        from repro.apps.nbd import NBDNegotiation
        n = NBDNegotiation(export_size=409 * 1024 * 1024, flags=1)
        raw = n.encode()
        assert len(raw) == 152
        decoded = NBDNegotiation.decode(raw)
        assert decoded == n

    def test_bad_password_rejected(self):
        from repro.apps.nbd import NBDNegotiation
        from repro.errors import NBDError
        raw = bytearray(NBDNegotiation(100).encode())
        raw[0] = ord("X")
        with pytest.raises(NBDError):
            NBDNegotiation.decode(bytes(raw))

    def test_clients_learn_export_size(self, sim):
        client, server, _f = build_gige_pair(sim)
        disk = DiskModel(sim)
        sim.process(socket_nbd_server(sim, server, disk,
                                      export_size=777 * 1024))
        nbd = NbdSocketClient(client, server.addr, NBD_PORT)

        def run():
            yield from nbd.connect()
            yield from nbd.run_phase("read", 64 * 1024)
            yield from nbd.disconnect()
            return nbd.negotiation.export_size

        cp = sim.process(run())
        sim.run(until=60_000_000)
        assert cp.triggered and cp.ok
        assert cp.value == 777 * 1024

    def test_qpip_client_negotiates_too(self, sim):
        client, server, _f = build_qpip_pair(sim, mtu=9000)
        disk = DiskModel(sim)
        sim.process(qpip_nbd_server(sim, server, disk))
        nbd = NbdQpipClient(client, server.addr, NBD_PORT)

        def run():
            yield from nbd.connect()
            return nbd.negotiation.export_size

        cp = sim.process(run())
        sim.run(until=60_000_000)
        assert cp.triggered and cp.ok
        assert cp.value == 1 << 30


class TestUdpBlast:
    def test_socket_blast_paced_no_loss(self, sim):
        from repro.apps.udpblast import socket_udp_blast
        a, b, _f = build_gige_pair(sim)
        r = socket_udp_blast(sim, a, b, datagrams=200, interval_us=50.0)
        assert r.received == 200
        assert r.loss_rate == 0.0
        assert r.goodput_mb_per_sec > 5

    def test_socket_blast_overload_loses_datagrams(self, sim):
        from repro.apps.udpblast import socket_udp_blast
        a, b, _f = build_gige_pair(sim)
        # Shrink the receive queue and blast with no pacing: overflow.
        r = socket_udp_blast(sim, a, b, datagrams=400, interval_us=0.0)
        # Best effort: transfer completes, some datagrams just vanish.
        assert 0 < r.received <= 400

    def test_qpip_blast_paced_no_loss(self, sim):
        from repro.apps.udpblast import qpip_udp_blast
        a, b, _f = build_qpip_pair(sim)
        r = qpip_udp_blast(sim, a, b, datagrams=200, interval_us=60.0)
        assert r.received == 200
        assert r.loss_rate == 0.0

    def test_qpip_blast_without_enough_wrs_drops(self, sim):
        from repro.apps.udpblast import qpip_udp_blast
        a, b, _f = build_qpip_pair(sim)
        # Few receive WRs + fast arrival: the NIC drops datagrams with
        # no posted WR (paper §3 best-effort semantics).
        r = qpip_udp_blast(sim, a, b, datagrams=300, interval_us=0.0,
                           recv_buffers=4, app_delay_us=200.0)
        assert r.received < 300
        assert b.firmware.udp_drops_no_wr > 0
