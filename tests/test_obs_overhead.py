"""Observability must be free when off and invisible when on.

Two regression gates for the ``repro.obs`` hooks that now live on every
hot path (verbs post, CQ push, firmware stages, NIC wire engines, link
transmit, switch forwarding, host softirq, TCP loss handling):

* **Disabled → zero cost.**  ``obs.RECORDER`` is ``None`` unless a test
  or the CLI installs one, so the hook is a single module-attribute
  read.  Importing ``repro`` must never leave a recorder installed.

* **Enabled → zero interference.**  A recorder only *reads* simulator
  state; installing one must not change a single simulated outcome.
  We re-run the golden-determinism workloads with tracing on and
  assert completions, wire traces (timestamps included) and final sim
  time are bit-for-bit identical to the untraced runs — and that the
  fast-vs-naive equivalence still holds while traced.
"""

import importlib
import pkgutil

from repro import obs
from test_fastpath_determinism import (_run_pingpong, _run_ttcp,
                                       _run_verbs_exchange)


def _run_traced(fn, enabled):
    """Run a determinism workload with a recorder installed.

    The workload constructs its own Simulator internally, so the
    recorder is installed against a shim clock; timestamps are not
    asserted here — only the *workload's* observable outputs are
    compared, which is exactly the zero-interference contract.
    """
    from repro.sim import Simulator
    shim = Simulator()
    with obs.capture(shim) as rec:
        out = fn(enabled)
    return out, rec


class TestDisabledIsDefault:
    def test_no_recorder_after_importing_everything(self):
        import repro
        for mod in pkgutil.walk_packages(repro.__path__, "repro."):
            if mod.name.endswith("__main__"):
                continue  # importing it runs the CLI
            importlib.import_module(mod.name)
        assert obs.RECORDER is None

    def test_hot_path_hook_is_one_attribute_read(self):
        # The contract hot paths rely on: the module global, not a
        # function call, gates all instrumentation.
        assert obs.RECORDER is None
        rec = obs.RECORDER
        if rec is not None:  # pragma: no cover - the cheap branch
            raise AssertionError("recorder leaked from a previous test")


class TestTracedRunsAreBitIdentical:
    def test_ttcp_traced_equals_untraced(self):
        plain = _run_ttcp(True)
        traced, rec = _run_traced(_run_ttcp, True)
        assert traced == plain
        assert rec.records  # tracing actually happened

    def test_pingpong_traced_equals_untraced(self):
        plain = _run_pingpong(True)
        traced, rec = _run_traced(_run_pingpong, True)
        assert traced == plain
        assert rec.records

    def test_verbs_exchange_traced_equals_untraced(self):
        plain = _run_verbs_exchange(True)
        traced, rec = _run_traced(_run_verbs_exchange, True)
        assert traced == plain
        assert rec.records

    def test_fastpath_equivalence_holds_while_traced(self):
        fast, rec_fast = _run_traced(_run_ttcp, True)
        slow, rec_slow = _run_traced(_run_ttcp, False)
        assert fast["result"] == slow["result"]
        assert fast["wire"] == slow["wire"]
        assert fast["now"] == slow["now"]
        # Both modes walked the same span structure too: same number of
        # WR spans begun and ended.
        for rec in (rec_fast, rec_slow):
            assert any(ev.ph == "b" for ev in rec.records)
        fast_spans = sum(1 for ev in rec_fast.records if ev.ph == "b")
        slow_spans = sum(1 for ev in rec_slow.records if ev.ph == "b")
        assert fast_spans == slow_spans

    def test_recorder_uninstalled_after_each_run(self):
        _run_traced(_run_pingpong, True)
        assert obs.RECORDER is None
