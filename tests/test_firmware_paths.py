"""Firmware control-path and error-path coverage: management FSM,
doorbells, teardown races, listener edge cases."""

import pytest

from repro.bench.configs import build_qpip_pair
from repro.core import (MgmtCommand, QPState, QPTransport, WRStatus)
from repro.errors import QPStateError, VerbsError
from repro.net.addresses import Endpoint
from repro.sim import Event, Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_procs(sim, *gens, until=30_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


class TestManagementFsm:
    def test_unknown_command_fails_cleanly(self, sim):
        a, _b, _f = build_qpip_pair(sim)
        done = Event(sim)
        caught = []
        done.callbacks.append(
            lambda e: caught.append(e.value) if not e.ok else None)
        a.firmware.nic.post_mgmt(MgmtCommand("frobnicate", (), done))
        sim.run(until=sim.now + 100_000)
        assert done.triggered and not done.ok
        assert isinstance(caught[0], VerbsError)

    def test_duplicate_qp_creation_rejected(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            with pytest.raises(VerbsError):
                yield from iface._mgmt("create_qp", qp)

        run_procs(sim, proc())

    def test_connect_on_connected_qp_rejected(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            with pytest.raises(QPStateError):
                yield from iface.connect(qp, Endpoint(b.addr, 9000))

        run_procs(sim, server(), client())

    def test_listen_twice_same_port_rejected(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            yield from iface.listen(9000)
            with pytest.raises(Exception):
                yield from iface.listen(9000)

        run_procs(sim, proc())

    def test_accept_on_unknown_listener_rejected(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            with pytest.raises(VerbsError):
                yield from iface.accept(999, qp)

        run_procs(sim, proc())

    def test_deregister_memory(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            buf = yield from iface.register_memory(4096)
            yield from iface._mgmt("deregister", buf.lkey)
            # The key is gone from the NIC translation table.
            with pytest.raises(Exception):
                a.firmware.translation.lookup(buf.lkey)

        run_procs(sim, proc())


class TestQueueLimits:
    def test_send_queue_capacity_enforced(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            yield sim.timeout(20_000_000)

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq, max_send_wr=4)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            # Stuff the send queue faster than the NIC drains it.
            with pytest.raises(VerbsError):
                for _ in range(50):
                    qp.enqueue_send(  # direct enqueue: no doorbell pacing
                        __import__("repro.core.wr", fromlist=["WorkRequest"])
                        .WorkRequest(1, __import__("repro.core.wr",
                                                   fromlist=["WROpcode"])
                                     .WROpcode.SEND, [buf.sge(0, 8)]))

        run_procs(sim, server(), client())

    def test_recv_queue_capacity_enforced(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq, max_recv_wr=2)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            yield from iface.post_recv(qp, [buf.sge()])
            with pytest.raises(VerbsError):
                yield from iface.post_recv(qp, [buf.sge()])

        run_procs(sim, proc())


class TestTeardownRaces:
    def test_disconnect_with_sends_in_flight(self, sim):
        a, b, _f = build_qpip_pair(sim)
        observed = {}

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_recv_wr=32)
            bufs = []
            for _ in range(16):
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            yield sim.timeout(30_000_000)
            observed["server_state"] = qp.state

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_send_wr=32)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            for _ in range(8):
                yield from iface.post_send(qp, [buf.sge(0, 512)])
            # Graceful disconnect immediately: queued data must still land.
            yield from iface.disconnect(qp)
            done = 0
            while done < 8:
                cqes = yield from iface.wait(cq)
                done += len([c for c in cqes if c.ok])
            observed["sends_done"] = done

        run_procs(sim, client(), server(), until=60_000_000)
        assert observed["sends_done"] == 8
        assert observed["server_state"] is not QPState.ERROR

    def test_destroy_qp_flushes_posted_wrs(self, sim):
        a, _b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            for _ in range(3):
                yield from iface.post_recv(qp, [buf.sge()])
            yield from iface.destroy_qp(qp)
            yield sim.timeout(10_000)
            cqes = yield from iface.poll(cq, max_entries=16)
            return cqes

        (cqes,) = run_procs(sim, proc())
        assert len(cqes) == 3
        assert all(c.status is WRStatus.FLUSHED for c in cqes)


class TestDoorbells:
    def test_doorbell_for_unknown_qp_ignored(self, sim):
        a, _b, _f = build_qpip_pair(sim)
        a.nic.ring_doorbell((777, "send"))
        sim.run(until=sim.now + 10_000)
        # No crash; the firmware consumed and discarded it.
        assert len(a.nic.doorbell_fifo) == 0

    def test_doorbell_occupancy_accounted(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def proc():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            for _ in range(5):
                yield from iface.post_recv(qp, [buf.sge()])

        run_procs(sim, proc())
        assert a.nic.cycles.samples.get("doorbell", 0) == 5
        assert a.nic.cycles.mean("doorbell") == pytest.approx(1.0)
