"""Property tests for the collective schedules and accumulation rule.

The pure in-memory executors (`ring_allreduce_local`,
`recursive_doubling_local`) are the oracles the simulated engines are
held against elsewhere; here hypothesis holds *them* against the naive
element-wise sum across world sizes 2..32 and arbitrary lengths —
including odd, prime, shorter-than-world, and empty vectors.  The test
vectors are integer-valued (`rank_vector`'s contract), so float64 sums
are exact in any association order and every comparison is ``==``,
not approx.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (allreduce_oracle, chunk_bounds,
                               rank_vector, recursive_doubling_local,
                               ring_allreduce_local)


@settings(max_examples=60, deadline=None)
@given(world=st.integers(2, 32), length=st.integers(0, 67),
       seed=st.integers(0, 1000))
def test_ring_allreduce_sum(world, length, seed):
    vectors = [rank_vector(r, world, length, seed) for r in range(world)]
    expected = allreduce_oracle(world, length, seed)
    for acc in ring_allreduce_local(vectors):
        assert acc == expected


@settings(max_examples=40, deadline=None)
@given(log_world=st.integers(1, 5), length=st.integers(0, 67),
       seed=st.integers(0, 1000))
def test_recursive_doubling_sum(log_world, length, seed):
    world = 1 << log_world
    vectors = [rank_vector(r, world, length, seed) for r in range(world)]
    expected = allreduce_oracle(world, length, seed)
    for acc in recursive_doubling_local(vectors):
        assert acc == expected


@settings(max_examples=40, deadline=None)
@given(log_world=st.integers(1, 5), length=st.integers(0, 67),
       seed=st.integers(0, 1000))
def test_ring_and_rd_agree_bitwise(log_world, length, seed):
    world = 1 << log_world
    vectors = [rank_vector(r, world, length, seed) for r in range(world)]
    ring = ring_allreduce_local(vectors)
    rd = recursive_doubling_local(vectors)
    assert ring == rd


@settings(max_examples=100, deadline=None)
@given(length=st.integers(0, 500), world=st.integers(1, 64))
def test_chunk_bounds_partition(length, world):
    bounds = chunk_bounds(length, world)
    assert len(bounds) == world
    offset = 0
    for off, cnt in bounds:
        assert off == offset
        assert cnt >= 0
        offset += cnt
    assert offset == length
    # Sizes differ by at most one element (load balance contract).
    counts = [cnt for _off, cnt in bounds]
    assert max(counts) - min(counts) <= 1
