"""Property tests: ExactHistogram percentiles vs a naive sorted-list oracle.

The oracle is the nearest-rank definition computed from scratch on every
call; the implementation caches a sorted copy and must agree exactly on
any sample set and any percentile, including the empty and single-sample
edge cases.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import ExactHistogram

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
percent = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def oracle(samples, p):
    s = sorted(samples)
    if p == 0:
        return s[0]
    # Same underflow clamp as the implementation: exact nearest-rank has
    # rank >= 1 for any p > 0; float underflow (p/100*n -> 0.0) does not.
    return s[max(1, math.ceil(p / 100.0 * len(s))) - 1]


@given(st.lists(finite, min_size=1, max_size=200), percent)
def test_matches_oracle(samples, p):
    h = ExactHistogram()
    for x in samples:
        h.add(x)
    assert h.percentile(p) == oracle(samples, p)


@given(st.lists(finite, min_size=1, max_size=100))
def test_extremes_are_min_and_max(samples):
    h = ExactHistogram()
    for x in samples:
        h.add(x)
    assert h.percentile(0) == min(samples)
    assert h.percentile(100) == max(samples)


@given(st.lists(finite, min_size=1, max_size=50),
       percent, percent)
def test_monotone_in_p(samples, p1, p2):
    h = ExactHistogram()
    for x in samples:
        h.add(x)
    lo, hi = sorted((p1, p2))
    assert h.percentile(lo) <= h.percentile(hi)


@given(finite)
def test_single_sample_is_every_percentile(x):
    h = ExactHistogram()
    h.add(x)
    for p in (0, 1, 50, 99, 100):
        assert h.percentile(p) == x


@given(st.lists(finite, min_size=1, max_size=50), percent,
       st.lists(finite, min_size=1, max_size=10))
def test_cache_invalidation_after_more_samples(samples, p, more):
    """Interleaved percentile() calls must not stale the sorted cache."""
    h = ExactHistogram()
    for x in samples:
        h.add(x)
    assert h.percentile(p) == oracle(samples, p)
    for x in more:
        h.add(x)
    assert h.percentile(p) == oracle(samples + more, p)


def test_empty_histogram_raises():
    h = ExactHistogram()
    with pytest.raises(ValueError):
        h.percentile(50)
    with pytest.raises(ValueError):
        h.mean


def test_out_of_range_percentile_raises():
    h = ExactHistogram()
    h.add(1.0)
    with pytest.raises(ValueError):
        h.percentile(-0.1)
    with pytest.raises(ValueError):
        h.percentile(100.1)
