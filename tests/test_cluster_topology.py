"""Topology builders + routing pins (cluster satellites).

Fat-tree/ring blueprints must be structurally sound (port budgets, no
orphan trunks) and every route must actually walk the fabric from the
source switch to the destination host port.  Equal-cost choices are
pinned: neither trunk insertion order (MyrinetFabric BFS) nor trunk
list order (blueprint ECMP hash) may change a route, because routes are
part of the bit-for-bit determinism contract in repro.cluster.
"""

import dataclasses

import pytest

from repro.errors import ConfigError, RouteError
from repro.fabric import (FabricBlueprint, MyrinetFabric, fat_tree_blueprint,
                          ring_blueprint)
from repro.sim import Simulator


def walk_route(bp: FabricBlueprint, src: str, dst: str, route):
    """Follow one egress-port byte per hop; return the terminal
    (switch, port) the last byte selects."""
    # Map (switch, port) -> (far switch, far port) for every trunk side.
    far = {}
    for a, pa, b, pb, _prop in bp.trunks:
        far[(a, pa)] = (b, pb)
        far[(b, pb)] = (a, pa)
    sid = bp.host(src)[1]
    for i, port in enumerate(route):
        assert 0 <= port < bp.switch_ports[sid], (src, dst, route, i)
        if i == len(route) - 1:
            return sid, port
        assert (sid, port) in far, \
            f"route {src}->{dst} hop {i} exits a non-trunk port"
        sid, _far_port = far[(sid, port)]
    raise AssertionError("empty route")


class TestFatTreeInvariants:
    def test_16_host_two_stage_shape(self):
        bp = fat_tree_blueprint(16, hosts_per_edge=4, spines=2)
        assert len(bp.switch_ports) == 4 + 2         # 4 edges + 2 spines
        assert len(bp.trunks) == 4 * 2               # full edge-spine mesh
        assert len(bp.hosts) == 16

    def test_port_budgets_exactly_consumed(self):
        bp = fat_tree_blueprint(16, hosts_per_edge=4, spines=2)
        used = [0] * len(bp.switch_ports)
        seen = set()
        for a, pa, b, pb, _prop in bp.trunks:
            for sid, port in ((a, pa), (b, pb)):
                assert (sid, port) not in seen, "port double-booked"
                seen.add((sid, port))
                used[sid] += 1
        for _name, sid, port in bp.hosts:
            assert (sid, port) not in seen
            seen.add((sid, port))
            used[sid] += 1
        # The builder sizes switches to what the wiring consumes: no
        # orphan trunk ports, no oversubscribed switch.
        assert used == bp.switch_ports

    def test_no_orphan_trunks(self):
        bp = fat_tree_blueprint(12, hosts_per_edge=4, spines=2)
        host_switches = {sid for _n, sid, _p in bp.hosts}
        for a, _pa, b, _pb, _prop in bp.trunks:
            # Every trunk connects an edge (has hosts) to a spine.
            assert (a in host_switches) != (b in host_switches)

    def test_every_pair_routes_to_the_destination_port(self):
        bp = fat_tree_blueprint(16, hosts_per_edge=4, spines=2)
        names = [name for name, _s, _p in bp.hosts]
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                route = bp.route(src, dst)
                _dname, dsid, dport = bp.host(dst)
                assert walk_route(bp, src, dst, route) == (dsid, dport), \
                    (src, dst, route)

    def test_intra_edge_route_is_single_hop(self):
        bp = fat_tree_blueprint(8, hosts_per_edge=4, spines=2)
        assert len(bp.route("h0", "h1")) == 1
        assert len(bp.route("h0", "h4")) == 3    # edge -> spine -> edge

    def test_route_rejects_unknown_and_self(self):
        bp = fat_tree_blueprint(8)
        with pytest.raises(RouteError):
            bp.route("h0", "nope")
        with pytest.raises(RouteError):
            bp.route("h3", "h3")


class TestRing:
    def test_needs_three_switches(self):
        with pytest.raises(ConfigError):
            ring_blueprint(2)

    def test_routes_valid_both_ways_around(self):
        bp = ring_blueprint(5, hosts_per_switch=2)
        names = [name for name, _s, _p in bp.hosts]
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                _d, dsid, dport = bp.host(dst)
                assert walk_route(bp, src, dst, bp.route(src, dst)) \
                    == (dsid, dport)


class TestPinnedTieBreaks:
    def test_blueprint_ecmp_ignores_trunk_list_order(self):
        bp = fat_tree_blueprint(16, hosts_per_edge=4, spines=2)
        shuffled = dataclasses.replace(
            bp, trunks=list(reversed(bp.trunks)))
        names = [name for name, _s, _p in bp.hosts]
        for src in names:
            for dst in names:
                if src != dst:
                    assert bp.route(src, dst) == shuffled.route(src, dst)

    def test_ecmp_spreads_across_spines(self):
        bp = fat_tree_blueprint(16, hosts_per_edge=4, spines=2)
        first_hops = {bp.route("h0", dst)[0]
                      for dst in ("h4", "h5", "h8", "h9", "h12", "h13")}
        assert len(first_hops) > 1, "ECMP hash never picked spine 1"

    def _diamond_path(self, order):
        """sw0 and sw3 joined via sw1 and sw2; returns the *switch path*
        the BFS route takes.  Port numbers shift with insertion order
        (sequential allocator) but the path must not."""
        from repro.fabric.link import Attachment
        sim = Simulator()
        fab = MyrinetFabric(sim)
        for _ in range(4):
            fab.add_switch(4)
        for a, b in order:
            fab.connect_switches(a, b)
        fab.attach_host("src", Attachment(sim, "src"), switch_id=0)
        fab.attach_host("dst", Attachment(sim, "dst"), switch_id=3)
        route = fab.source_route("src", "dst")
        far = {}
        for a, pa, b, pb in fab._trunks:
            far[(a, pa)] = b
            far[(b, pb)] = a
        path, sid = [0], 0
        for port in route[:-1]:
            sid = far[(sid, port)]
            path.append(sid)
        return path

    def test_myrinet_bfs_path_is_insertion_order_independent(self):
        paths = {
            tuple(self._diamond_path(order))
            for order in (
                [(0, 1), (0, 2), (1, 3), (2, 3)],
                [(0, 2), (0, 1), (2, 3), (1, 3)],
                [(2, 3), (1, 3), (0, 2), (0, 1)],
                [(1, 3), (2, 3), (0, 2), (0, 1)],
            )}
        # Sorted adjacency pins the equal-cost choice to the lowest
        # neighbor id: always src -> sw1 -> dst, however the trunks
        # were declared.
        assert paths == {(0, 1, 3)}
