"""Test harness: a pair of TCP connections joined by a lossy delay pipe.

This bypasses IP/link layers so the engine can be tested in isolation;
full-stack paths get their own integration tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.addresses import Endpoint, FourTuple, IPv6Address
from repro.net.headers.transport import SYN, ACK, TCPHeader
from repro.net.packet import Payload
from repro.net.tcp import TcpConfig, TcpConnection
from repro.sim import Simulator


class PipeCtx:
    """Connection context + a one-way delay pipe to the peer context."""

    def __init__(self, sim: Simulator, name: str, delay: float = 5.0):
        self.sim = sim
        self.name = name
        self.delay = delay
        self.peer: Optional["PipeCtx"] = None
        self.conn: Optional[TcpConnection] = None
        self.delivered: List[Tuple[Payload, bool]] = []
        self.completions: List[int] = []
        self.events: List[str] = []
        self.reset_exc: Optional[Exception] = None
        self.established = False
        self.closed = False
        self.remote_fin = False
        self.buffer_space_signals = 0
        self.sent: List[Tuple[float, TCPHeader, int]] = []   # (time, hdr, paylen)
        self.received: List[Tuple[float, TCPHeader, int]] = []
        self.loss_filter: Optional[Callable[[TCPHeader, Payload], bool]] = None
        self.auto_consume = True   # read delivered data right away (window reopens)
        self._drain_scheduled = False

    # -- ctx protocol ------------------------------------------------------

    def output_ready(self, conn) -> None:
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.sim.call_soon(self._drain)

    def deliver(self, conn, payload, psh) -> None:
        self.delivered.append((payload, psh))
        if self.auto_consume and not conn._credit_mode:
            conn.app_consumed(payload.length)

    def on_established(self, conn) -> None:
        self.established = True
        self.events.append("established")

    def on_remote_fin(self, conn) -> None:
        self.remote_fin = True
        self.events.append("remote_fin")

    def on_closed(self, conn) -> None:
        self.closed = True
        self.events.append("closed")

    def on_reset(self, conn, exc) -> None:
        self.reset_exc = exc
        self.events.append("reset")

    def on_send_complete(self, conn, msg_id) -> None:
        self.completions.append(msg_id)

    def on_send_buffer_space(self, conn) -> None:
        self.buffer_space_signals += 1

    # -- pipe -------------------------------------------------------------

    def _drain(self) -> None:
        self._drain_scheduled = False
        while True:
            desc = self.conn.next_descriptor()
            if desc is None:
                return
            built = self.conn.build_segment(desc)
            if built is None:
                continue
            hdr, payload = built
            self.sent.append((self.sim.now, hdr, payload.length))
            if self.loss_filter is not None and self.loss_filter(hdr, payload):
                continue
            self.sim.call_later(self.delay, self.peer._rx, hdr, payload)

    def _rx(self, hdr: TCPHeader, payload: Payload) -> None:
        self.received.append((self.sim.now, hdr, payload.length))
        from repro.net.tcp.tcb import TcpState
        if (self.conn.state is TcpState.CLOSED and hdr.flag(SYN)
                and not hdr.flag(ACK)):
            self.conn.passive_open(hdr)
        else:
            self.conn.handle_segment(hdr, payload)

    @property
    def delivered_bytes(self) -> bytes:
        return b"".join(p.to_bytes() for p, _ in self.delivered)


def make_pair(sim: Simulator, client_cfg: Optional[TcpConfig] = None,
              server_cfg: Optional[TcpConfig] = None, delay: float = 5.0,
              ) -> Tuple[PipeCtx, PipeCtx]:
    """Create client/server contexts with connections ready to run."""
    client_cfg = client_cfg or TcpConfig()
    server_cfg = server_cfg or TcpConfig()
    a_ep = Endpoint(IPv6Address.from_index(1), 4000)
    b_ep = Endpoint(IPv6Address.from_index(2), 5000)
    cctx = PipeCtx(sim, "client", delay)
    sctx = PipeCtx(sim, "server", delay)
    cctx.peer, sctx.peer = sctx, cctx
    cctx.conn = TcpConnection(sim, cctx, FourTuple(a_ep, b_ep), client_cfg, iss=1000)
    sctx.conn = TcpConnection(sim, sctx, FourTuple(b_ep, a_ep), server_cfg,
                              iss=900_000)
    return cctx, sctx


def establish(sim: Simulator, cctx: PipeCtx, sctx: PipeCtx) -> None:
    cctx.conn.connect()
    sim.run(until=sim.now + 1_000)
    assert cctx.established and sctx.established, "handshake failed"
