"""Self-healing QP layer: retry policies, circuit breaking, health
probes, exactly-once replay across QP incarnations, and the chaos
``--recover`` invariant (every application op eventually succeeds exactly
once, bit-for-bit reproducibly per seed)."""

import pytest

from repro.bench.configs import build_qpip_pair
from repro.core import QPState, QPTransport
from repro.errors import (ConfigError, PostDeadlineExceeded, QpTornDown,
                          QueueFull)
from repro.faults import FaultPlan, check_determinism, run_chaos
from repro.net.addresses import Endpoint, IPv6Address
from repro.net.headers.transport import SYN, TCPHeader
from repro.recovery import (BreakerState, CircuitBreaker, RecoveryAcceptor,
                            RecoveryManager, RetryPolicy)
from repro.sim import RngHub, Simulator, Watchdog


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_pure_exponential_schedule_is_exact(self):
        policy = RetryPolicy(base_delay=100.0, max_delay=1000.0,
                             multiplier=2.0, jitter="none", max_attempts=6,
                             first_delay=0.0)
        assert list(policy.delays()) == [0.0, 100.0, 200.0, 400.0,
                                         800.0, 1000.0]

    def test_first_delay_honoured(self):
        policy = RetryPolicy(jitter="none", max_attempts=2, first_delay=50.0)
        assert next(iter(policy.delays())) == 50.0

    def test_full_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=100.0, max_delay=5000.0,
                             jitter="full", max_attempts=8)
        one = list(policy.delays(RngHub(7).stream("retry")))
        two = list(policy.delays(RngHub(7).stream("retry")))
        other = list(policy.delays(RngHub(8).stream("retry")))
        assert one == two                    # same seed, same schedule
        assert one != other                  # seeds actually matter
        for attempt, delay in enumerate(one):
            if attempt == 0:
                continue
            raw = min(5000.0, 100.0 * 2.0 ** (attempt - 1))
            assert 0.0 <= delay <= raw

    def test_decorrelated_jitter_capped(self):
        policy = RetryPolicy(base_delay=100.0, max_delay=2000.0,
                             jitter="decorrelated", max_attempts=32)
        for delay in list(policy.delays(RngHub(3).stream("retry")))[1:]:
            assert 100.0 <= delay <= 2000.0

    def test_budget_is_max_attempts(self):
        policy = RetryPolicy(jitter="none", max_attempts=3)
        assert len(list(policy.delays())) == 3

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter="bogus")
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=500.0, max_delay=100.0)
        with pytest.raises(ConfigError):
            list(RetryPolicy(jitter="full").delays())   # rng required


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_and_sheds(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=3,
                                 reset_timeout=1000.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.shed == 1
        assert breaker.cooldown_remaining == pytest.approx(1000.0)

    def test_half_open_probe_then_close(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 reset_timeout=1000.0, half_open_probes=1)
        breaker.record_failure()
        sim.run(until=2000.0)
        assert breaker.allow()               # the rationed probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()           # second probe is shed
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 reset_timeout=1000.0)
        breaker.record_failure()
        sim.run(until=2000.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 2000.0   # fresh cooldown
        assert breaker.opens == 2

    def test_success_resets_consecutive_count(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


# ---------------------------------------------------------------------------
# Watchdog (the health-probe deadman)
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_fires_without_feed(self, sim):
        fired = []
        wd = Watchdog(sim, 100.0, lambda: fired.append(sim.now))
        wd.arm()
        sim.run(until=250.0)
        assert fired == [100.0]
        assert wd.expirations == 1

    def test_feed_defers_expiry(self, sim):
        fired = []
        wd = Watchdog(sim, 100.0, lambda: fired.append(sim.now))
        wd.arm()
        for at in (50.0, 100.0, 150.0):
            sim.call_later(at, wd.feed)
        sim.run(until=400.0)
        assert fired == [250.0]

    def test_disarm_cancels(self, sim):
        fired = []
        wd = Watchdog(sim, 100.0, lambda: fired.append(sim.now))
        wd.arm()
        sim.call_later(50.0, wd.disarm)
        sim.run(until=400.0)
        assert fired == []


# ---------------------------------------------------------------------------
# Listener backlog hygiene (regression: failed handshakes leaked
# ``pending`` slots until the listener silently dropped every SYN)
# ---------------------------------------------------------------------------

class _NullCtx:
    """Minimal duck-typed TCP context that drops everything."""

    def output_ready(self, conn):
        pass

    def deliver(self, conn, payload, psh):
        pass

    def on_established(self, conn):
        pass

    def on_remote_fin(self, conn):
        pass

    def on_closed(self, conn):
        pass

    def on_reset(self, conn, exc):
        pass

    def on_send_complete(self, conn, msg_id):
        pass

    def on_send_buffer_space(self, conn):
        pass


class TestListenerBacklog:
    def _syn(self, seq):
        return TCPHeader(40000 + seq, 5000, seq=seq, flags=SYN, mss=1460)

    def test_aborted_handshake_releases_backlog_slot(self, sim):
        from repro.net.tcp.endpoints import TcpModule
        from repro.net.tcp.tcb import TcpConfig
        module = TcpModule(sim)
        local = Endpoint(IPv6Address.from_index(1), 5000)
        listener = module.listen(local, TcpConfig(), _NullCtx, backlog=4)
        # Far more half-open connections than the backlog holds: each one
        # dies before ESTABLISHED and must give its slot back.
        for i in range(3 * listener.backlog):
            src = Endpoint(IPv6Address.from_index(2), 40000 + i)
            conn = listener.on_syn(self._syn(i), src)
            assert conn is not None, f"SYN {i} dropped: backlog leaked"
            conn.abort(ConnectionError("handshake died"))
            assert not listener.pending
        assert listener.syn_drops == 0
        assert not module.connections           # abort also clears the table

    def test_established_connection_reaches_accept_queue(self, sim):
        from repro.net.tcp.endpoints import TcpModule
        from repro.net.tcp.tcb import TcpConfig
        module = TcpModule(sim)
        local = Endpoint(IPv6Address.from_index(1), 5000)
        listener = module.listen(local, TcpConfig(), _NullCtx, backlog=4)
        src = Endpoint(IPv6Address.from_index(2), 40000)
        conn = listener.on_syn(self._syn(0), src)
        # Complete the handshake: ACK of our SYN|ACK.
        from repro.net.headers.transport import ACK
        from repro.net.packet import EMPTY
        ack = TCPHeader(40000, 5000, seq=1,
                        ack=(conn.iss + 1) & 0xFFFFFFFF, flags=ACK)
        conn.handle_segment(ack, EMPTY)
        assert not listener.pending
        assert len(listener.accept_queue) == 1


# ---------------------------------------------------------------------------
# Verbs post paths on a torn-down QP + backpressure semantics
# ---------------------------------------------------------------------------

def run_procs(sim, *gens, until=30_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


class TestPostPathFailures:
    def test_both_post_paths_raise_qp_torn_down(self, sim):
        node_a, node_b, _fabric = build_qpip_pair(sim)

        def server():
            iface = node_b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9100)
            yield from iface.accept(listener, qp)

        def client():
            iface = node_a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(node_b.addr, 9100))
            yield sim.timeout(5000)          # let the server finish accept()
            node_a.firmware.abort_qp(qp)
            yield sim.timeout(1000)          # let the teardown action drain
            assert qp.state is QPState.ERROR
            with pytest.raises(QpTornDown):
                yield from iface.post_send(qp, [buf.sge(0, 64)])
            with pytest.raises(QpTornDown):
                yield from iface.post_recv(qp, [buf.sge()])

        run_procs(sim, server(), client())

    def test_queue_full_and_post_deadline(self, sim):
        node_a, _node_b, _fabric = build_qpip_pair(sim)

        def client():
            iface = node_a.iface
            cq = yield from iface.create_cq()
            # Unconnected QP: posted sends sit in the queue, so the
            # watermark machinery is the only thing that can admit more.
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_send_wr=2)
            buf = yield from iface.register_memory(4096)
            for _ in range(2):
                yield from iface.post_send(qp, [buf.sge(0, 64)])
            with pytest.raises(QueueFull):
                yield from iface.post_send(qp, [buf.sge(0, 64)], timeout=0)
            with pytest.raises(PostDeadlineExceeded):
                yield from iface.post_send(qp, [buf.sge(0, 64)],
                                           timeout=2000.0)

        run_procs(sim, client())


# ---------------------------------------------------------------------------
# Timer-originated teardown must drain the firmware action queue
# (regression: an abort from a bare timer callback on an idle wire used
# to sit in the action queue until unrelated traffic woke the firmware)
# ---------------------------------------------------------------------------

class TestTimerOriginatedAbort:
    def test_abort_from_timer_callback_flushes_idle_qp(self, sim):
        node_a, node_b, _fabric = build_qpip_pair(sim)
        rig = {}

        def server():
            iface = node_b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9200)
            yield from iface.accept(listener, qp)

        def client():
            iface = node_a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            yield sim.timeout(500)
            yield from iface.connect(qp, Endpoint(node_b.addr, 9200))
            rig["qp"], rig["cq"] = qp, cq

        run_procs(sim, server(), client())
        qp, cq = rig["qp"], rig["cq"]
        # The wire is now completely idle.  Fire the abort from a timer
        # callback — exactly what the recovery watchdog does.
        sim.call_later(1_000.0, node_a.firmware.abort_qp, qp)
        sim.run(until=sim.now + 5_000.0)
        assert qp.state is QPState.ERROR
        assert node_a.firmware.watchdog_aborts == 1
        flushed = cq.pop_many(16)
        assert flushed, "posted recv WR was not flushed by the timer abort"
        assert all(not cqe.ok for cqe in flushed)


# ---------------------------------------------------------------------------
# End-to-end: exactly-once across forced QP restarts
# ---------------------------------------------------------------------------

def _run_echo_session(seed, kills=(5, 15, 25), iterations=30):
    """Echo ``iterations`` payloads through a RecoveryManager, killing the
    client QP after each index in ``kills``.  Returns (manager, acceptor,
    echoes) after an orderly close."""
    sim = Simulator()
    hub = RngHub(seed)
    node_a, node_b, _fabric = build_qpip_pair(sim)
    acceptor = RecoveryAcceptor(node_b, port=9300,
                                handler=lambda _sid, payload: payload)
    manager = RecoveryManager(node_a, Endpoint(node_b.addr, 9300),
                              session_id=1,
                              policy=RetryPolicy(max_attempts=8),
                              rng=hub.stream("recovery.client"),
                              max_msg=256)
    echoes = []

    def client():
        yield from manager.start()
        for i in range(iterations):
            payload = bytes([i % 251]) * 64
            yield from manager.send(payload)
            echo = yield from manager.recv()
            echoes.append(echo == payload)
            if i in kills:
                node_a.firmware.abort_qp(manager.qp)
        yield from manager.drain()
        yield from manager.close()
        acceptor.close()

    procs = [sim.process(acceptor.run()), sim.process(client())]
    sim.run(until=60_000_000)
    assert procs[1].triggered, "client hung"
    if not procs[1].ok:
        raise procs[1].value
    return manager, acceptor, echoes


class TestExactlyOnceAcrossRestarts:
    def test_three_forced_restarts_deliver_every_message_once(self):
        manager, acceptor, echoes = _run_echo_session(seed=5)
        rep = manager.report()
        assert all(echoes) and len(echoes) == 30
        assert rep["heals"] == 3
        assert rep["incarnations"] == 4
        assert rep["unacked"] == 0
        # The acceptor admitted each message exactly once; every replayed
        # copy died in the dedup window.
        sess = acceptor.report()["sessions"][1]
        assert sess["rcv_next"] == 30
        assert acceptor.report()["delivered"] == 30

    def test_recovery_trace_is_deterministic(self):
        first, _, _ = _run_echo_session(seed=9)
        second, _, _ = _run_echo_session(seed=9)
        assert first.trace == second.trace
        assert first.report() == second.report()

    def test_heartbeats_keep_idle_session_alive(self):
        sim = Simulator()
        hub = RngHub(2)
        node_a, node_b, _fabric = build_qpip_pair(sim)
        acceptor = RecoveryAcceptor(node_b, port=9400)
        manager = RecoveryManager(node_a, Endpoint(node_b.addr, 9400),
                                  session_id=1, rng=hub.stream("r"),
                                  heartbeat_interval=10_000.0)

        def client():
            yield from manager.start()
            yield sim.timeout(500_000.0)     # idle: only PING/PONG flows
            yield from manager.close()
            acceptor.close()

        procs = [sim.process(acceptor.run()), sim.process(client())]
        sim.run(until=10_000_000)
        assert procs[1].triggered and procs[1].ok
        rep = manager.report()
        assert rep["heartbeats_sent"] >= 40
        assert rep.get("watchdog_escalations", 0) == 0
        assert rep["incarnations"] == 1      # never had to reconnect


# ---------------------------------------------------------------------------
# Chaos --recover: the headline invariant
# ---------------------------------------------------------------------------

def lossy_plan():
    return FaultPlan().drop(0.02).corrupt(0.01)


class TestChaosRecover:
    @pytest.mark.parametrize("workload", ["ttcp", "pingpong"])
    def test_stream_recover_exactly_once(self, workload):
        result = run_chaos(seed=1, workload=workload, plan=lossy_plan(),
                           messages=32, msg_size=1024,
                           recover=True, restarts=3)
        assert result.ok, result.summary()
        assert result.forced_restarts == 3
        assert result.recovery["qp_error_transitions"] >= 3
        assert result.recovery["recoveries"] >= 3
        assert result.bytes_delivered == result.bytes_sent
        assert result.messages_delivered == 32

    def test_kvstore_failover_recover(self):
        result = run_chaos(seed=1, workload="kvstore", plan=lossy_plan(),
                           messages=16, msg_size=256,
                           recover=True, restarts=2)
        assert result.ok, result.summary()
        assert result.forced_restarts == 2
        assert result.recovery["recoveries"] >= 2
        assert result.messages_delivered == 16
        assert result.payload_mismatches == 0

    def test_recover_trace_is_deterministic(self):
        first, second = check_determinism(
            seed=3, workload="pingpong", plan=lossy_plan(),
            messages=24, msg_size=512, recover=True, restarts=2)
        assert first.trace_key() == second.trace_key()
        assert first.ok and second.ok

    def test_recover_rejects_kill_modes(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            run_chaos(seed=1, recover=True, kill="rst", messages=8)

    def test_kvstore_requires_recover(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            run_chaos(seed=1, workload="kvstore", messages=8)
