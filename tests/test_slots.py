"""No hot per-packet/per-event class may grow a ``__dict__``.

``__slots__`` on these classes is a deliberate perf decision (millions
of instances per bulk run); a stray class attribute or a subclass
without slots silently reintroduces per-instance dicts.  These tests
make the absence of ``__dict__`` an enforced contract.
"""

import pytest

from repro.core.cq import CompletionQueue
from repro.core.wr import Completion, WorkRequest, WROpcode
from repro.mem.buffers import SGE
from repro.net.headers.ip import IPv4Header, IPv6Header
from repro.net.headers.link import EthernetHeader, MyrinetHeader
from repro.net.headers.transport import TCPHeader, UDPHeader
from repro.net.addresses import IPv6Address, MacAddress
from repro.net.packet import (BytesPayload, ChainPayload, Packet,
                              ZeroPayload)
from repro.sim import Simulator
from repro.sim.engine import (Event, Process, Timeout, _BurstWalk,
                              _CallbackHandle, _ProcWake)


def _assert_no_dict(obj):
    cls = type(obj)
    assert not hasattr(obj, "__dict__"), \
        f"{cls.__name__} instances grew a __dict__ (slots are broken)"
    assert "__dict__" not in dir(cls) or not hasattr(obj, "__dict__")
    # Frozen slotted dataclasses raise TypeError here (their generated
    # __setattr__ trips on the recreated class); everything else raises
    # AttributeError.  Either way the write must not succeed.
    with pytest.raises((AttributeError, TypeError)):
        obj.some_attribute_that_does_not_exist = 1


class TestHeaderSlots:
    def test_tcp_header(self):
        _assert_no_dict(TCPHeader(1, 2, seq=3, ts_val=4))

    def test_udp_header(self):
        _assert_no_dict(UDPHeader(1, 2, length=16))

    def test_ipv4_header(self):
        from repro.net.addresses import IPv4Address
        a = IPv4Address(bytes([10, 0, 0, 1]))
        b = IPv4Address(bytes([10, 0, 0, 2]))
        _assert_no_dict(IPv4Header(a, b, protocol=6))

    def test_ipv6_header(self):
        a = IPv6Address(bytes(16))
        b = IPv6Address(bytes([1] * 16))
        _assert_no_dict(IPv6Header(a, b, next_header=6))

    def test_link_headers(self):
        _assert_no_dict(MyrinetHeader([1, 2], 0x86DD))
        _assert_no_dict(EthernetHeader(MacAddress.from_index(1),
                                       MacAddress.from_index(2)))


class TestPacketSlots:
    def test_packet(self):
        _assert_no_dict(Packet())

    def test_payloads(self):
        _assert_no_dict(ZeroPayload(10))
        _assert_no_dict(BytesPayload(b"xy"))
        _assert_no_dict(ChainPayload([BytesPayload(b"xy"), ZeroPayload(4)]))


class TestCoreSlots:
    def test_work_request(self):
        wr = WorkRequest(1, WROpcode.RECV, [SGE(0, 64, 1)])
        _assert_no_dict(wr)

    def test_completion(self):
        _assert_no_dict(Completion(1, 2, WROpcode.SEND))

    def test_sge(self):
        _assert_no_dict(SGE(0, 64, 1))


class TestSimSlots:
    def test_event_family(self):
        sim = Simulator()
        _assert_no_dict(Event(sim))
        _assert_no_dict(Timeout(sim, 1.0))

        def proc():
            yield sim.timeout(1.0)

        _assert_no_dict(Process(sim, proc()))

    def test_callback_handle(self):
        sim = Simulator()
        handle = sim.call_later(5.0, lambda: None)
        assert type(handle) is _CallbackHandle
        _assert_no_dict(handle)

    def test_burst_walk(self):
        # One _BurstWalk per submitted batch on the hot path; a __dict__
        # here would undo most of the burst-submit allocation win.
        sim = Simulator()
        walk = sim.defer(1.0, lambda: None)
        assert type(walk) is _BurstWalk
        _assert_no_dict(walk)
        _assert_no_dict(sim.burst([(0.5, lambda: None), (1.5, lambda: None)]))

    def test_proc_wake(self):
        sim = Simulator()
        _assert_no_dict(_ProcWake(None))

    def test_cq_stays_functional(self):
        # CompletionQueue itself is not slotted (one per QP, cold); this
        # documents that only the per-entry objects are constrained.
        sim = Simulator()
        cq = CompletionQueue(sim, 1, 16)
        assert hasattr(cq, "__dict__")
