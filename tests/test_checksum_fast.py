"""The word-folding checksum fast path against the byte-pair oracle.

The fast ``ones_complement_sum`` interprets the buffer as one big
integer and reduces it mod 0xFFFF; these tests pin the tricky edges
(odd tails, all-zero buffers, the 0 vs 0xFFFF residue rendering) and
cross-check it against the naive reference loop — exhaustively on small
inputs and property-based via Hypothesis when it is installed.
"""

import struct

import pytest

from repro import fastpath
from repro.net.checksum import (checksum, combine, finish,
                                incremental_update, ones_complement_sum,
                                ones_complement_sum_naive, pseudo_header_v4,
                                pseudo_header_v6, subtract)


class TestOddTail:
    def test_odd_tail_byte_is_big_endian_high_half(self):
        # RFC 1071: a trailing odd byte is padded with zeros on the
        # right, i.e. it contributes <byte> << 8, not <byte>.
        assert ones_complement_sum(b"\xab") == 0xAB00
        assert ones_complement_sum_naive(b"\xab") == 0xAB00

    def test_odd_length_matches_naive(self):
        data = bytes(range(1, 60))  # 59 bytes, odd
        assert ones_complement_sum(data) == ones_complement_sum_naive(data)

    def test_even_then_odd_boundary(self):
        for n in range(0, 9):
            data = bytes([0x5A] * n)
            assert ones_complement_sum(data) == \
                ones_complement_sum_naive(data), n

    def test_empty(self):
        assert ones_complement_sum(b"") == 0

    def test_all_zero_stays_zero(self):
        # A zero sum must render as 0, not 0xFFFF (the residue-0 case
        # only maps to 0xFFFF for a non-zero total).
        assert ones_complement_sum(bytes(64)) == 0

    def test_residue_zero_nonzero_total_renders_ffff(self):
        # 0xFFFF + 0x0000 folds to residue 0 with a non-zero total.
        assert ones_complement_sum(b"\xff\xff") == 0xFFFF
        assert ones_complement_sum_naive(b"\xff\xff") == 0xFFFF

    def test_initial_accumulator(self):
        data = b"\x12\x34\x56"
        for init in (0, 1, 0xFFFF, 0x1234):
            assert ones_complement_sum(data, init) == \
                ones_complement_sum_naive(data, init)


class TestExhaustiveSmall:
    def test_all_two_byte_buffers_sampled(self):
        for hi in range(0, 256, 17):
            for lo in range(0, 256, 13):
                data = bytes([hi, lo])
                assert ones_complement_sum(data) == \
                    ones_complement_sum_naive(data)

    def test_naive_path_used_when_fastpath_off(self):
        data = bytes(range(37))
        with fastpath.forced(False):
            off = ones_complement_sum(data)
        with fastpath.forced(True):
            on = ones_complement_sum(data)
        assert off == on == ones_complement_sum_naive(data)


class TestIncrementalUpdate:
    def test_matches_full_recompute(self):
        # A real IPv4-style header: change one word, patch the checksum.
        head = bytearray(struct.pack("!BBHHHBBH", 0x45, 0, 40, 7, 0x4000,
                                     64, 6, 0))
        head += bytes([10, 0, 0, 1, 10, 0, 0, 2])
        old_csum = checksum(bytes(head))
        struct.pack_into("!H", head, 10, old_csum)
        # Flip the TTL/protocol word (offset 8).
        old_word = (head[8] << 8) | head[9]
        new_word = ((64 - 1) << 8) | head[9]
        patched = incremental_update(old_csum, old_word, new_word)
        head[8] = 63
        struct.pack_into("!H", head, 10, 0)
        assert patched == checksum(bytes(head))

    def test_subtract_then_combine_roundtrip(self):
        data = b"\xde\xad\xbe\xef\x12\x34"
        acc = ones_complement_sum(data)
        removed = subtract(acc, 0x1234)
        assert combine(removed, 0x1234) == acc

    def test_finish_inverts(self):
        assert finish(0x0000) == 0xFFFF
        assert finish(0xFFFF) == 0x0000


class TestPseudoHeaders:
    def test_v4_matches_packed_reference(self):
        src, dst = bytes([10, 1, 2, 3]), bytes([10, 4, 5, 6])
        ph = src + dst + struct.pack("!BBH", 0, 6, 1234)
        assert pseudo_header_v4(src, dst, 1234, 6) == \
            ones_complement_sum_naive(ph)

    def test_v6_matches_packed_reference(self):
        src, dst = bytes(range(16)), bytes(range(16, 32))
        ph = src + dst + struct.pack("!IxxxB", 99999, 6)
        assert pseudo_header_v6(src, dst, 99999, 6) == \
            ones_complement_sum_naive(ph)

    def test_v6_cache_consistent_across_lengths(self):
        # The memoized address-pair sum must not leak between calls with
        # different upper lengths.
        src, dst = bytes(16), bytes([1] * 16)
        for upper in (0, 1, 0xFFFF, 0x10000, 0x12345):
            ph = src + dst + struct.pack("!IxxxB", upper, 17)
            assert pseudo_header_v6(src, dst, upper, 17) == \
                ones_complement_sum_naive(ph)


class TestPropertyBased:
    def test_fast_equals_naive_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=300, deadline=None)
        @given(data=st.binary(min_size=0, max_size=257),
               init=st.integers(min_value=0, max_value=0xFFFF))
        def check(data, init):
            assert ones_complement_sum(data, init) == \
                ones_complement_sum_naive(data, init)

        check()

    def test_incremental_update_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=200, deadline=None)
        @given(words=st.lists(st.integers(0, 0xFFFF), min_size=2,
                              max_size=20),
               idx=st.integers(0, 19),
               new_word=st.integers(0, 0xFFFF))
        def check(words, idx, new_word):
            idx %= len(words)
            data = b"".join(struct.pack("!H", w) for w in words)
            old_csum = checksum(data)
            patched = incremental_update(
                old_csum, words[idx], new_word)
            words[idx] = new_word
            new_data = b"".join(struct.pack("!H", w) for w in words)
            # RFC 1624 eqn. 3 agrees with a recompute whenever the
            # recomputed checksum is not 0xFFFF (the -0/+0 ambiguity).
            full = checksum(new_data)
            if full != 0xFFFF:
                assert patched == full

        check()
