"""End-to-end tests of the TCP connection engine over the delay pipe."""

import pytest

from repro.errors import ConnectionReset
from repro.net.headers.transport import ACK, FIN, SYN
from repro.net.packet import BytesPayload, ZeroPayload
from repro.net.tcp import TcpConfig, TcpState
from repro.sim import Simulator

from helpers_tcp import PipeCtx, establish, make_pair


@pytest.fixture
def sim():
    return Simulator()


def msg_cfg(**kw):
    kw.setdefault("message_mode", True)
    kw.setdefault("mss", 16324)
    return TcpConfig(**kw)


class TestHandshake:
    def test_three_way_handshake(self, sim):
        cctx, sctx = make_pair(sim)
        cctx.conn.connect()
        sim.run(until=1000)
        assert cctx.conn.state is TcpState.ESTABLISHED
        assert sctx.conn.state is TcpState.ESTABLISHED
        assert cctx.established and sctx.established
        # SYN, SYN|ACK, ACK = exactly three segments.
        assert len(cctx.sent) + len(sctx.sent) == 3

    def test_options_negotiated(self, sim):
        cctx, sctx = make_pair(sim,
                               TcpConfig(mss=9000, max_window=1 << 20),
                               TcpConfig(mss=1460, max_window=1 << 20))
        establish(sim, cctx, sctx)
        assert cctx.conn.peer_mss == 1460
        assert sctx.conn.peer_mss == 9000
        assert cctx.conn.ts_ok and sctx.conn.ts_ok
        assert cctx.conn.ws_ok and sctx.conn.ws_ok
        # Effective MSS is the min of the two, less timestamp overhead.
        assert cctx.conn.effective_mss == 1460 - 12

    def test_timestamps_disabled_when_one_side_lacks_them(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(use_timestamps=False), TcpConfig())
        establish(sim, cctx, sctx)
        assert not cctx.conn.ts_ok and not sctx.conn.ts_ok
        assert cctx.conn.effective_mss == 1460

    def test_no_window_scaling_when_not_offered(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(use_window_scaling=False),
                               TcpConfig())
        establish(sim, cctx, sctx)
        assert not cctx.conn.ws_ok
        assert cctx.conn.snd_wscale == 0

    def test_syn_retransmitted_on_loss(self, sim):
        cctx, sctx = make_pair(sim)
        drops = []
        cctx.loss_filter = lambda hdr, p: (hdr.flag(SYN)
                                           and not drops.append(1)
                                           and len(drops) <= 1)
        cctx.conn.connect()
        sim.run(until=3_000_000)
        assert cctx.conn.state is TcpState.ESTABLISHED
        assert cctx.conn.stats.retransmitted_segs >= 1

    def test_syn_retry_exhaustion_resets(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(syn_retries=2))
        cctx.loss_filter = lambda hdr, p: True   # black hole
        cctx.conn.connect()
        sim.run(until=60_000_000)
        assert cctx.reset_exc is not None
        assert cctx.conn.state is TcpState.CLOSED


class TestMessageMode:
    def test_single_message_delivery_and_completion(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        cctx.conn.send_message(BytesPayload(b"ping"), msg_id=7)
        sim.run(until=sim.now + 500_000)
        assert sctx.delivered_bytes == b"ping"
        assert cctx.completions == [7]  # completed when ACKed (paper §3)

    def test_message_boundaries_preserved(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        for i, m in enumerate([b"alpha", b"bee", b"gamma!"]):
            cctx.conn.send_message(BytesPayload(m), msg_id=i)
        sim.run(until=sim.now + 500_000)
        assert [p.to_bytes() for p, _ in sctx.delivered] == \
            [b"alpha", b"bee", b"gamma!"]
        assert cctx.completions == [0, 1, 2]

    def test_oversized_message_rejected(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(mss=1000), msg_cfg(mss=1000))
        establish(sim, cctx, sctx)
        with pytest.raises(ConnectionReset):
            cctx.conn.send_message(ZeroPayload(5000))

    def test_messages_queued_before_establishment_flow_after(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        cctx.conn.connect()
        cctx.conn.send_message(BytesPayload(b"early"), msg_id=1)
        sim.run(until=500_000)
        assert sctx.delivered_bytes == b"early"

    def test_bulk_messages_all_arrive_in_order(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(mss=4096), msg_cfg(mss=4096))
        establish(sim, cctx, sctx)
        count = 200
        for i in range(count):
            cctx.conn.send_message(BytesPayload(i.to_bytes(4, "big") * 100),
                                   msg_id=i)
        sim.run(until=sim.now + 5_000_000)
        assert len(sctx.delivered) == count
        for i, (p, _) in enumerate(sctx.delivered):
            assert p.to_bytes()[:4] == i.to_bytes(4, "big")
        assert cctx.completions == list(range(count))

    def test_zero_length_message(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        # A zero-length QP message still consumes a receive and completes.
        # (seq_len 0 means no ack-tracking: completes once "sent".)
        cctx.conn.send_message(ZeroPayload(0), msg_id=3)
        sim.run(until=sim.now + 500_000)
        assert 3 in cctx.completions


class TestStreamMode:
    def test_large_write_segmented_at_mss(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(mss=1460), TcpConfig(mss=1460))
        establish(sim, cctx, sctx)
        data = bytes(range(256)) * 20   # 5120 bytes
        taken = cctx.conn.send_stream(BytesPayload(data))
        assert taken == len(data)
        sim.run(until=sim.now + 1_000_000)
        assert sctx.delivered_bytes == data
        # Segments capped at effective MSS.
        data_segs = [s for s in cctx.sent if s[2] > 0]
        assert all(s[2] <= cctx.conn.effective_mss for s in data_segs)
        assert len(data_segs) >= 4

    def test_send_buffer_backpressure(self, sim):
        cfg = TcpConfig(send_buffer=4096, mss=1460)
        cctx, sctx = make_pair(sim, cfg, TcpConfig())
        establish(sim, cctx, sctx)
        taken1 = cctx.conn.send_stream(ZeroPayload(10_000))
        assert taken1 == 4096
        sim.run(until=sim.now + 1_000_000)
        assert cctx.buffer_space_signals > 0
        assert cctx.conn.send_space() == 4096

    def test_interleaved_small_writes_coalesce(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(mss=1460), TcpConfig(mss=1460))
        establish(sim, cctx, sctx)

        def writer():
            for i in range(10):
                cctx.conn.send_stream(BytesPayload(bytes([i]) * 10))
                yield sim.timeout(1)

        sim.process(writer())
        sim.run(until=sim.now + 1_000_000)
        assert len(sctx.delivered_bytes) == 100

    def test_nagle_holds_small_segments(self, sim):
        cfg = TcpConfig(mss=1000, nodelay=False)
        cctx, sctx = make_pair(sim, cfg, TcpConfig(mss=1000))
        establish(sim, cctx, sctx)
        cctx.sent.clear()
        # Two small writes in quick succession: second waits for first's ACK.
        cctx.conn.send_stream(BytesPayload(b"a" * 10))
        cctx.conn.send_stream(BytesPayload(b"b" * 10))
        sim.run(until=sim.now + 1_000_000)
        data_segs = [s for s in cctx.sent if s[2] > 0]
        assert len(data_segs) == 2          # not 1 combined, not 3
        assert sctx.delivered_bytes == b"a" * 10 + b"b" * 10

    def test_stream_api_mismatch_raises(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        with pytest.raises(ConnectionReset):
            cctx.conn.send_stream(ZeroPayload(10))
        cctx2, sctx2 = make_pair(sim)
        with pytest.raises(ConnectionReset):
            cctx2.conn.send_message(ZeroPayload(10))


class TestAcking:
    def test_delayed_ack_single_segment(self, sim):
        cfg = TcpConfig(delack_segments=2, delack_timeout=200_000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        t0 = sim.now
        sctx.sent.clear()
        cctx.conn.send_stream(BytesPayload(b"x"))
        sim.run(until=t0 + 150_000)
        acks = [s for s in sctx.sent if s[2] == 0]
        assert not acks                       # still delayed
        sim.run(until=t0 + 400_000)
        acks = [s for s in sctx.sent if s[2] == 0]
        assert len(acks) == 1                 # fired on the delack timer

    def test_every_second_segment_acked_immediately(self, sim):
        cfg = TcpConfig(delack_segments=2, mss=1000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        sctx.sent.clear()
        cctx.conn.send_stream(ZeroPayload(2000))  # exactly 2 segments
        sim.run(until=sim.now + 50_000)
        acks = [s for s in sctx.sent if s[2] == 0]
        assert len(acks) == 1

    def test_rtt_estimate_tracks_pipe_delay(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg(), delay=50.0)
        establish(sim, cctx, sctx)
        for i in range(20):
            cctx.conn.send_message(ZeroPayload(100), msg_id=i)
            sim.run(until=sim.now + 300_000)
        assert cctx.conn.rtt.samples >= 5
        # True RTT is 100 µs (+ delack delay on pure-ack paths).
        assert 90 <= cctx.conn.rtt.srtt <= 300_000


class TestLossRecovery:
    def test_rto_retransmission(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(min_rto=20_000), msg_cfg())
        establish(sim, cctx, sctx)
        dropped = []

        def drop_first_data(hdr, payload):
            if payload.length > 0 and not dropped:
                dropped.append(hdr.seq)
                return True
            return False

        cctx.loss_filter = drop_first_data
        cctx.conn.send_message(BytesPayload(b"retry-me"), msg_id=0)
        sim.run(until=sim.now + 5_000_000)
        assert sctx.delivered_bytes == b"retry-me"
        assert cctx.conn.stats.rto_timeouts >= 1
        assert cctx.conn.stats.retransmitted_segs >= 1
        assert cctx.completions == [0]

    def test_fast_retransmit_with_reassembly(self, sim):
        cfg = msg_cfg(mss=1000, reassembly=True, min_rto=1_000_000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        state = {"dropped": False}

        def drop_one(hdr, payload):
            if payload.length > 0 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        cctx.loss_filter = drop_one
        for i in range(8):
            cctx.conn.send_message(BytesPayload(bytes([i]) * 500), msg_id=i)
        sim.run(until=sim.now + 500_000)
        # Recovered via fast retransmit well before the 1 s RTO.
        assert cctx.conn.stats.fast_retransmits == 1
        assert cctx.conn.stats.rto_timeouts == 0
        assert len(sctx.delivered) == 8
        # Reassembly queue preserved the out-of-order segments.
        assert sctx.conn.stats.ooo_queued >= 1
        assert cctx.completions == list(range(8))

    def test_no_reassembly_drops_out_of_order(self, sim):
        cfg = msg_cfg(mss=1000, reassembly=False, min_rto=50_000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        state = {"dropped": False}

        def drop_one(hdr, payload):
            if payload.length > 0 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        cctx.loss_filter = drop_one
        for i in range(8):
            cctx.conn.send_message(BytesPayload(bytes([i]) * 500), msg_id=i)
        sim.run(until=sim.now + 10_000_000)
        # Everything still arrives (retransmission), but the out-of-order
        # segments were discarded on first receipt (prototype behaviour).
        assert len(sctx.delivered) == 8
        assert sctx.conn.stats.ooo_dropped >= 1
        assert cctx.conn.stats.retransmitted_segs >= 2
        assert cctx.completions == list(range(8))

    def test_ack_loss_recovered_by_retransmit(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(min_rto=20_000), msg_cfg())
        establish(sim, cctx, sctx)
        state = {"dropped": False}

        def drop_first_ack(hdr, payload):
            if payload.length == 0 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        sctx.loss_filter = drop_first_ack
        cctx.conn.send_message(BytesPayload(b"m"), msg_id=0)
        sim.run(until=sim.now + 5_000_000)
        assert cctx.completions == [0]
        # Receiver saw the data twice; duplicate discarded.
        assert sctx.conn.stats.duplicate_data_segs >= 1
        assert sctx.delivered_bytes == b"m"

    def test_heavy_random_loss_still_delivers_everything(self, sim):
        import random
        rng = random.Random(42)
        cfg = msg_cfg(mss=1000, min_rto=20_000, reassembly=True)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        cctx.loss_filter = lambda h, p: rng.random() < 0.2
        sctx.loss_filter = lambda h, p: rng.random() < 0.2
        count = 50
        for i in range(count):
            cctx.conn.send_message(BytesPayload(i.to_bytes(2, "big") * 50),
                                   msg_id=i)
        sim.run(until=sim.now + 120_000_000)
        assert len(sctx.delivered) == count
        for i, (p, _) in enumerate(sctx.delivered):
            assert p.to_bytes()[:2] == i.to_bytes(2, "big")
        assert cctx.completions == list(range(count))


class TestFlowControl:
    def test_credit_window_blocks_until_posted(self, sim):
        cfg = msg_cfg(mss=1000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        sctx.conn.enable_credit_window(0)     # no receive WRs posted yet
        establish(sim, cctx, sctx)
        cctx.conn.send_message(ZeroPayload(800), msg_id=0)
        sim.run(until=sim.now + 300_000)
        assert not sctx.delivered              # zero window: nothing sent
        assert cctx.conn.snd_wnd == 0
        sctx.conn.set_receive_credit(2048)     # post receive buffers
        sim.run(until=sim.now + 300_000)
        assert len(sctx.delivered) == 1        # window update released it
        assert cctx.completions == [0]

    def test_window_tracks_posted_credit(self, sim):
        cfg = msg_cfg(mss=1000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        sctx.conn.enable_credit_window(50_000)
        establish(sim, cctx, sctx)
        sim.run(until=sim.now + 1000)
        # Paper §5.1: "the more receive buffer space posted, the larger
        # the TCP receive window the sender can utilize".
        assert 49_000 <= cctx.conn.snd_wnd <= 50_000

    def test_persist_probe_elicits_window_update(self, sim):
        cfg = TcpConfig(mss=1000, persist_timeout=50_000)
        # Stream mode with a small receive buffer that fills up.
        cfg_recv = TcpConfig(mss=1000, recv_buffer=2000)
        cctx, sctx = make_pair(sim, cfg, cfg_recv)
        sctx.auto_consume = False
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(5000))
        sim.run(until=sim.now + 400_000)
        assert cctx.conn.snd_wnd == 0          # receiver buffer full
        stalled_at = len(sctx.delivered_bytes)
        assert stalled_at < 5000
        # Window-update ACK from the app reading data was lost? Simulate by
        # consuming while updates flow normally: eventually all data lands.
        sctx.conn.app_consumed(stalled_at)
        sim.run(until=sim.now + 2_000_000)
        sctx.conn.app_consumed(len(sctx.delivered_bytes) - stalled_at)
        sim.run(until=sim.now + 2_000_000)
        assert len(sctx.delivered_bytes) == 5000

    def test_persist_probe_fires_when_update_lost(self, sim):
        cfg = TcpConfig(mss=1000, persist_timeout=50_000)
        cfg_recv = TcpConfig(mss=1000, recv_buffer=1000)
        cctx, sctx = make_pair(sim, cfg, cfg_recv)
        sctx.auto_consume = False
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(3000))
        sim.run(until=sim.now + 200_000)
        assert cctx.conn.snd_wnd == 0
        # Drop the window-update ACK the receiver sends after the app reads.
        state = {"drops": 0}

        def drop_next_ack(hdr, payload):
            if payload.length == 0 and state["drops"] == 0:
                state["drops"] += 1
                return True
            return False

        sctx.loss_filter = drop_next_ack
        sctx.conn.app_consumed(1000)   # window update for this gets dropped
        sim.run(until=sim.now + 2_000_000)
        assert cctx.conn.stats.window_probes >= 1  # probe recovered the stall

        def consumer():
            while len(sctx.delivered_bytes) < 3000:
                buffered = sctx.conn._rcv_buffered
                if buffered:
                    sctx.conn.app_consumed(buffered)
                yield sim.timeout(10_000)

        sim.process(consumer())
        sim.run(until=sim.now + 10_000_000)
        assert len(sctx.delivered_bytes) == 3000


class TestClose:
    def test_graceful_close_four_way(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.close()
        sim.run(until=sim.now + 100_000)
        assert sctx.remote_fin
        assert sctx.conn.state is TcpState.CLOSE_WAIT
        assert cctx.conn.state is TcpState.FIN_WAIT_2
        sctx.conn.close()
        sim.run(until=sim.now + 100_000)
        assert sctx.closed                     # LAST_ACK -> CLOSED
        assert cctx.conn.state is TcpState.TIME_WAIT
        sim.run(until=sim.now + 5_000_000)     # 2 MSL
        assert cctx.closed

    def test_close_flushes_pending_data_first(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        cctx.conn.send_message(BytesPayload(b"last words"), msg_id=0)
        cctx.conn.close()
        sim.run(until=sim.now + 500_000)
        assert sctx.delivered_bytes == b"last words"
        assert sctx.remote_fin

    def test_simultaneous_close(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.close()
        sctx.conn.close()
        sim.run(until=sim.now + 10_000_000)
        assert cctx.closed and sctx.closed

    def test_abort_sends_rst(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.abort()
        sim.run(until=sim.now + 100_000)
        assert cctx.closed
        assert sctx.reset_exc is not None
        assert sctx.conn.state is TcpState.CLOSED

    def test_data_after_remote_fin_still_flows(self, sim):
        # Half-close: client FINs, server keeps sending (CLOSE_WAIT data).
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        cctx.conn.close()
        sim.run(until=sim.now + 100_000)
        assert sctx.conn.state is TcpState.CLOSE_WAIT
        sctx.conn.send_message(BytesPayload(b"still here"), msg_id=9)
        sim.run(until=sim.now + 500_000)
        assert cctx.delivered_bytes == b"still here"
        assert sctx.completions == [9]


class TestSequenceWrap:
    def test_transfer_across_seq_wraparound(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(mss=1000), msg_cfg(mss=1000))
        # Force the ISS near the top of sequence space.
        cctx.conn.iss = cctx.conn.snd_una = cctx.conn.snd_nxt = (1 << 32) - 1500
        establish(sim, cctx, sctx)
        for i in range(10):
            cctx.conn.send_message(BytesPayload(bytes([i]) * 500), msg_id=i)
        sim.run(until=sim.now + 2_000_000)
        assert len(sctx.delivered) == 10
        assert cctx.completions == list(range(10))
        assert cctx.conn.snd_nxt < (1 << 31)   # wrapped


class TestStats:
    def test_counters_consistent_after_clean_transfer(self, sim):
        cctx, sctx = make_pair(sim, msg_cfg(), msg_cfg())
        establish(sim, cctx, sctx)
        for i in range(10):
            cctx.conn.send_message(ZeroPayload(256), msg_id=i)
        sim.run(until=sim.now + 2_000_000)
        cs, ss = cctx.conn.stats, sctx.conn.stats
        assert cs.bytes_out == 2560
        assert ss.bytes_in == 2560
        assert cs.retransmitted_segs == 0
        assert ss.ooo_segments == 0
        assert cs.segs_out >= 11      # SYN + 10 data
        assert ss.segs_in == cs.segs_out
