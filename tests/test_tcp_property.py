"""Property-based stress tests: random workloads and loss schedules
against the TCP engine, asserting the invariants that define TCP.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import BytesPayload
from repro.net.tcp import TcpConfig, TcpState
from repro.net.tcp.seqspace import seq_ge, seq_le
from repro.sim import Simulator

from helpers_tcp import establish, make_pair


def _invariants(conn):
    assert seq_le(conn.snd_una, conn.snd_nxt)
    assert conn.cc.cwnd >= conn.cc.mss
    if conn._retx:
        assert conn._rto_timer.armed or conn.state is TcpState.CLOSED
        assert conn._retx[0].seq == conn.snd_una or \
            seq_ge(conn._retx[0].seq, conn.snd_una)


class TestRandomScheduleDelivery:
    @settings(max_examples=25, deadline=None)
    @given(
        messages=st.lists(st.integers(1, 2000), min_size=1, max_size=20),
        drop_every=st.one_of(st.none(), st.integers(3, 15)),
        reassembly=st.booleans(),
        use_sack=st.booleans(),
        delay=st.floats(1.0, 200.0),
    )
    def test_everything_delivered_in_order(self, messages, drop_every,
                                           reassembly, use_sack, delay):
        """Whatever the sizes, loss pattern, delay and feature flags:
        every message arrives, intact, in order, exactly once."""
        sim = Simulator()
        cfg = TcpConfig(message_mode=True, mss=4096, min_rto=20_000,
                        reassembly=reassembly,
                        use_sack=use_sack and reassembly)
        cctx, sctx = make_pair(sim, cfg, cfg, delay=delay)
        establish(sim, cctx, sctx)
        if drop_every is not None:
            counter = {"n": 0}

            def drop(hdr, payload):
                if payload.length:
                    counter["n"] += 1
                    return counter["n"] % drop_every == 0
                return False

            cctx.loss_filter = drop
        blobs = [bytes([i % 256]) * size
                 for i, size in enumerate(messages)]
        for i, blob in enumerate(blobs):
            cctx.conn.send_message(BytesPayload(blob), msg_id=i)
        sim.run(until=sim.now + 120_000_000)

        assert [p.to_bytes() for p, _ in sctx.delivered] == blobs
        assert cctx.completions == list(range(len(blobs)))
        _invariants(cctx.conn)
        _invariants(sctx.conn)

    @settings(max_examples=15, deadline=None)
    @given(
        chunks=st.lists(st.integers(1, 5000), min_size=1, max_size=15),
        consume_chunk=st.integers(100, 10_000),
    )
    def test_stream_bytes_conserved(self, chunks, consume_chunk):
        """Stream mode: the receiver sees exactly the bytes sent, in order,
        regardless of write sizes and consumption pattern."""
        sim = Simulator()
        cfg = TcpConfig(mss=1460, send_buffer=1 << 20)
        cctx, sctx = make_pair(sim, cfg, cfg)
        sctx.auto_consume = False
        establish(sim, cctx, sctx)
        total = sum(chunks)
        reference = b"".join(bytes([i % 256]) * n
                             for i, n in enumerate(chunks))

        def sender():
            offset = 0
            for i, n in enumerate(chunks):
                blob = reference[offset:offset + n]
                sent = 0
                while sent < n:
                    took = cctx.conn.send_stream(
                        BytesPayload(blob[sent:]))
                    if took == 0:
                        yield sim.timeout(1000)
                    sent += took
                offset += n

        def consumer():
            while len(sctx.delivered_bytes) < total:
                buffered = sctx.conn._rcv_buffered
                if buffered:
                    sctx.conn.app_consumed(min(buffered, consume_chunk))
                yield sim.timeout(500)

        sim.process(sender())
        sim.process(consumer())
        sim.run(until=sim.now + 60_000_000)
        assert sctx.delivered_bytes == reference
        _invariants(cctx.conn)


class TestBidirectionalStress:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_full_duplex_random_traffic(self, seed):
        """Both directions at once with pseudo-random sizes: both sides'
        data survives intact (piggybacked ACK paths get exercised)."""
        import random
        rng = random.Random(seed)
        sim = Simulator()
        cfg = TcpConfig(message_mode=True, mss=2048)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        a_msgs = [bytes([rng.randrange(256)]) * rng.randrange(1, 1500)
                  for _ in range(8)]
        b_msgs = [bytes([rng.randrange(256)]) * rng.randrange(1, 1500)
                  for _ in range(8)]

        def pump(ctx, msgs):
            for i, m in enumerate(msgs):
                ctx.conn.send_message(BytesPayload(m), msg_id=i)
                yield sim.timeout(rng.randrange(1, 500))

        sim.process(pump(cctx, a_msgs))
        sim.process(pump(sctx, b_msgs))
        sim.run(until=sim.now + 30_000_000)
        assert [p.to_bytes() for p, _ in sctx.delivered] == a_msgs
        assert [p.to_bytes() for p, _ in cctx.delivered] == b_msgs
        assert cctx.completions == list(range(8))
        assert sctx.completions == list(range(8))
