"""Golden-number regression tests.

EXPERIMENTS.md records this repository's measured results.  These tests
pin the fast experiments to those values (tight tolerances), so a future
change that silently shifts the reproduction — a timing-table edit, a
protocol tweak — fails loudly here rather than drifting the documented
numbers.  (The deterministic simulator makes exact pinning possible;
small tolerances keep legitimate refactors painless.)

Slow experiments (Figure 7) are covered at full scale in benchmarks/.
"""

import pytest

from repro.bench import (run_fig3, run_fig4, run_mtu_sweep, run_table1)
from repro.units import MB

# Values as recorded in EXPERIMENTS.md (full-scale definitive run).
GOLDEN_FIG3 = {
    ("IP/GigE", "udp"): 121.0,
    ("IP/GigE", "tcp"): 142.0,
    ("IP/Myrinet", "udp"): 102.1,
    ("IP/Myrinet", "tcp"): 124.5,
    ("QPIP", "udp"): 81.0,
    ("QPIP", "tcp"): 114.4,
}
GOLDEN_FIG4 = {
    "IP/GigE": (44.2, 0.702),
    "IP/Myrinet": (49.5, 0.466),
    "QPIP": (79.7, 0.040),
}
GOLDEN_MTU = {1500: 22.3, 9000: 66.2, 16384: 79.7}
GOLDEN_FW_CHECKSUM = 25.7
GOLDEN_TABLE1 = (28.1, 2.5)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(iterations=100)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(total_bytes=10 * MB)


class TestGoldenFig3:
    @pytest.mark.parametrize("key", sorted(GOLDEN_FIG3))
    def test_rtt_pinned(self, fig3, key):
        system, proto = key
        assert fig3.measured(system, proto) == \
            pytest.approx(GOLDEN_FIG3[key], rel=0.02)


class TestGoldenFig4:
    @pytest.mark.parametrize("system", sorted(GOLDEN_FIG4))
    def test_throughput_and_cpu_pinned(self, fig4, system):
        mbps, cpu = fig4.measured(system)
        want_mbps, want_cpu = GOLDEN_FIG4[system]
        assert mbps == pytest.approx(want_mbps, rel=0.03)
        assert cpu == pytest.approx(want_cpu, rel=0.08)


class TestGoldenMtuSweep:
    def test_mtu_points_pinned(self):
        result = run_mtu_sweep(total_bytes=10 * MB)
        for mtu, want in GOLDEN_MTU.items():
            assert result.measured(mtu) == pytest.approx(want, rel=0.03), mtu
        assert result.fw_checksum_mbps == \
            pytest.approx(GOLDEN_FW_CHECKSUM, rel=0.03)


class TestGoldenTable1:
    def test_overheads_pinned(self):
        result = run_table1(iterations=100)
        want_host, want_qpip = GOLDEN_TABLE1
        assert result.host_based_us == pytest.approx(want_host, rel=0.03)
        assert result.qpip_us == pytest.approx(want_qpip, rel=0.03)
