"""Unit tests for Store, Mutex, WorkQueue, Timer and stats instruments."""

import pytest

from repro.sim import (Mutex, SimulationError, Simulator, Store, Timer,
                       PeriodicTimer, WorkQueue)
from repro.sim.stats import Counter, Histogram, RateMeter, RunningStats


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        st = Store(sim)
        st.put("x")

        def proc():
            v = yield st.get()
            return v

        assert sim.run_process(proc()) == "x"

    def test_get_blocks_until_put(self, sim):
        st = Store(sim)

        def getter():
            v = yield st.get()
            return (sim.now, v)

        sim.call_later(25, st.put, "late")
        assert sim.run_process(getter()) == (25, "late")

    def test_fifo_order(self, sim):
        st = Store(sim)
        for i in range(5):
            st.put(i)
        got = []

        def proc():
            for _ in range(5):
                got.append((yield st.get()))

        sim.run_process(proc())
        assert got == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self, sim):
        st = Store(sim)
        got = []

        def getter(tag):
            v = yield st.get()
            got.append((tag, v))

        sim.process(getter("a"))
        sim.process(getter("b"))
        sim.call_later(1, st.put, 1)
        sim.call_later(2, st.put, 2)
        sim.run()
        assert got == [("a", 1), ("b", 2)]

    def test_capacity_overflow_raises(self, sim):
        st = Store(sim, capacity=2)
        st.put(1)
        st.put(2)
        assert st.is_full
        assert not st.try_put(3)
        with pytest.raises(SimulationError):
            st.put(3)

    def test_try_get_nonblocking(self, sim):
        st = Store(sim)
        assert st.try_get() is None
        st.put(9)
        assert st.try_get() == 9

    def test_peek_does_not_remove(self, sim):
        st = Store(sim)
        st.put("a")
        assert st.peek() == "a"
        assert len(st) == 1

    def test_counters(self, sim):
        st = Store(sim)
        st.put(1)
        st.put(2)
        st.try_get()
        assert st.total_put == 2
        assert st.total_got == 1


class TestMutex:
    def test_exclusive_hold(self, sim):
        m = Mutex(sim)
        order = []

        def worker(tag, hold):
            yield m.acquire()
            order.append((tag, "in", sim.now))
            yield sim.timeout(hold)
            order.append((tag, "out", sim.now))
            m.release()

        sim.process(worker("a", 10))
        sim.process(worker("b", 10))
        sim.run()
        assert order == [("a", "in", 0), ("a", "out", 10),
                         ("b", "in", 10), ("b", "out", 20)]

    def test_release_unlocked_raises(self, sim):
        m = Mutex(sim)
        with pytest.raises(SimulationError):
            m.release()


class TestWorkQueue:
    def test_serial_execution(self, sim):
        wq = WorkQueue(sim)
        done_times = []
        wq.submit(10, fn=lambda: done_times.append(sim.now))
        wq.submit(5, fn=lambda: done_times.append(sim.now))
        sim.run()
        assert done_times == [10, 15]

    def test_priority_dispatch(self, sim):
        wq = WorkQueue(sim)
        order = []
        # First item starts immediately; the rest queue and sort by priority.
        wq.submit(10, fn=lambda: order.append("first"))
        wq.submit(1, priority=5, fn=lambda: order.append("low"))
        wq.submit(1, priority=0, fn=lambda: order.append("high"))
        sim.run()
        assert order == ["first", "high", "low"]

    def test_done_event_fires(self, sim):
        wq = WorkQueue(sim)

        def proc():
            yield wq.submit(7, category="syscall")
            return sim.now

        assert sim.run_process(proc()) == 7

    def test_busy_accounting(self, sim):
        wq = WorkQueue(sim)
        wq.submit(10, category="copy")
        wq.submit(30, category="checksum")
        sim.run()
        assert wq.busy_time == 40
        assert wq.busy_by_category == {"copy": 10, "checksum": 30}
        assert wq.items_completed == 2

    def test_utilization_window(self, sim):
        wq = WorkQueue(sim)
        wq.submit(25, category="work")
        sim.call_later(100, lambda: None)
        sim.run()
        assert sim.now == 100
        assert wq.utilization() == pytest.approx(0.25)
        assert wq.utilization_of("work") == pytest.approx(0.25)

    def test_reset_stats(self, sim):
        wq = WorkQueue(sim)
        wq.submit(10)
        sim.run()
        wq.reset_stats()
        assert wq.busy_time == 0
        assert wq.utilization() == 0.0

    def test_zero_duration_work(self, sim):
        wq = WorkQueue(sim)
        hits = []
        wq.submit(0, fn=lambda: hits.append(sim.now))
        sim.run()
        assert hits == [0]

    def test_negative_duration_rejected(self, sim):
        wq = WorkQueue(sim)
        with pytest.raises(SimulationError):
            wq.submit(-1)

    def test_queue_depth(self, sim):
        from repro import fastpath
        with fastpath.forced(False):
            wq = WorkQueue(sim)
            wq.submit(10)
            wq.submit(10)
            wq.submit(10)
            assert wq.queue_depth == 2  # one is in service
            assert wq.busy

    def test_queue_depth_fast_path(self, sim):
        # With the idle fast path, the first item is accounted eagerly
        # (busy horizon) and the next is dispatched behind it; only the
        # third waits in the heap.  Completion times are identical.
        from repro import fastpath
        with fastpath.forced(True):
            wq = WorkQueue(sim)
            wq.submit(10)
            wq.submit(10)
            wq.submit(10)
            assert wq.queue_depth == 1
            assert wq.busy
        sim.run()
        assert sim.now == 30
        assert wq.busy_time == 30


class TestTimer:
    def test_fires_once(self, sim):
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(12)
        sim.run()
        assert hits == [12]
        assert not t.armed
        assert t.fire_count == 1

    def test_cancel(self, sim):
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(12)
        sim.call_later(5, t.cancel)
        sim.run()
        assert hits == []

    def test_restart_supersedes(self, sim):
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(10)
        sim.call_later(5, t.start, 10)  # re-arm at t=5 -> fires at 15
        sim.run()
        assert hits == [15]

    def test_start_if_idle(self, sim):
        hits = []
        t = Timer(sim, lambda: hits.append(sim.now))
        t.start(10)
        t.start_if_idle(100)  # ignored; already armed
        sim.run()
        assert hits == [10]

    def test_deadline_and_remaining(self, sim):
        t = Timer(sim, lambda: None)
        t.start(10)
        assert t.deadline == 10
        assert t.remaining == 10
        t.cancel()
        assert t.deadline is None
        assert t.remaining is None

    def test_rearm_from_callback(self, sim):
        hits = []

        def cb():
            hits.append(sim.now)
            if len(hits) < 3:
                t.start(10)

        t = Timer(sim, cb)
        t.start(10)
        sim.run()
        assert hits == [10, 20, 30]

    def test_periodic(self, sim):
        hits = []
        p = PeriodicTimer(sim, 5, lambda: hits.append(sim.now))
        p.start()
        sim.call_later(17, p.stop)
        sim.run()
        assert hits == [5, 10, 15]


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.add()
        c.add(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_running_stats(self):
        s = RunningStats()
        for x in [2.0, 4.0, 6.0]:
            s.add(x)
        assert s.mean == pytest.approx(4.0)
        assert s.min == 2.0
        assert s.max == 6.0
        assert s.variance == pytest.approx(4.0)
        assert s.stddev == pytest.approx(2.0)

    def test_running_stats_empty(self):
        s = RunningStats()
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_histogram_buckets(self):
        h = Histogram(0, 100, buckets=10)
        for x in [5, 15, 15, 95, -1, 100]:
            h.add(x)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 6

    def test_histogram_percentile(self):
        h = Histogram(0, 100, buckets=100)
        for x in range(100):
            h.add(x)
        assert h.percentile(50) == pytest.approx(50, abs=1)
        assert h.percentile(99) == pytest.approx(99, abs=1)

    def test_rate_meter(self):
        r = RateMeter()
        r.observe(0.0, 100)
        r.observe(10.0, 100)
        assert r.rate() == pytest.approx(20.0)
        assert r.rate_over(0, 100) == pytest.approx(2.0)

    def test_rate_meter_empty(self):
        assert RateMeter().rate() == 0.0


class TestRng:
    def test_streams_independent_and_deterministic(self):
        from repro.sim import RngHub
        h1 = RngHub(seed=7)
        h2 = RngHub(seed=7)
        a1 = [h1.stream("loss").random() for _ in range(5)]
        a2 = [h2.stream("loss").random() for _ in range(5)]
        assert a1 == a2
        b = [h1.stream("workload").random() for _ in range(5)]
        assert a1 != b

    def test_same_stream_returned(self):
        from repro.sim import RngHub
        h = RngHub()
        assert h.stream("x") is h.stream("x")
