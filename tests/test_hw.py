"""Direct unit tests for the hardware layer: hosts, PCI/DMA, interrupt
throttling, the programmable-NIC chassis."""

import pytest

from repro.hw import (DumbNic, GmNic, Host, LanaiTiming, ProgrammableNic,
                      ib_class_timing, lanai_fw_checksum)
from repro.hw.host import INTERRUPT_PRIORITY
from repro.net.packet import Packet, ZeroPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def host(sim):
    return Host(sim, "h0")


class TestHostCpu:
    def test_interrupt_preempts_queued_work(self, sim, host):
        order = []
        host.cpu_work(10, "app", fn=lambda: order.append("app1"))
        host.cpu_work(10, "app", fn=lambda: order.append("app2"))
        host.raise_interrupt(lambda: order.append("irq"))
        sim.run()
        # app1 was in service; the interrupt jumps the queue past app2.
        assert order == ["app1", "irq", "app2"]
        assert host.interrupts_delivered == 1

    def test_copy_and_checksum_costs_scale(self, host):
        assert host.copy_cost(360) == pytest.approx(1.0)
        assert host.checksum_cost(380) == pytest.approx(1.0)
        assert host.copy_cost(0) == 0.0

    def test_cpu_utilization_window(self, sim, host):
        host.cpu_work(30, "app")
        sim.call_later(100, lambda: None)
        sim.run()
        assert host.cpu_utilization() == pytest.approx(0.3)
        host.reset_cpu_stats()
        assert host.cpu_utilization() == 0.0

    def test_address_spaces_share_physical_memory(self, host):
        a1 = host.new_address_space("p1")
        a2 = host.new_address_space("p2")
        r1 = a1.alloc(4096)
        r2 = a2.alloc(4096)
        a1.write(r1.addr, b"one")
        a2.write(r2.addr, b"two")
        assert a1.read(r1.addr, 3) == b"one"
        assert a2.read(r2.addr, 3) == b"two"
        assert host.memory.frames_allocated == 2


class TestPciBus:
    def test_dma_serializes_at_bandwidth(self, sim, host):
        done = []
        host.pci.dma(2000, setup=0.0).callbacks.append(
            lambda e: done.append(sim.now))
        host.pci.dma(2000, setup=0.0).callbacks.append(
            lambda e: done.append(sim.now))
        sim.run()
        # 200 B/µs sustained: 10 µs each, strictly serialized.
        assert done == [pytest.approx(10.0), pytest.approx(20.0)]
        assert host.pci.bytes_moved == 4000

    def test_dma_setup_added(self, sim, host):
        done = []
        host.pci.dma(200, setup=0.8).callbacks.append(
            lambda e: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(1.8)

    def test_doorbell_cost_constant(self, host):
        assert host.pci.doorbell_cost() == pytest.approx(0.3)


class TestInterruptThrottle:
    def _nic_with_sink(self, sim, host):
        nic = DumbNic(sim, host, name="eth0")
        seen = []
        nic.driver_rx = seen.append
        return nic, seen

    def test_idle_line_fires_after_assert_latency(self, sim, host):
        nic, seen = self._nic_with_sink(sim, host)
        nic._rx_ready(Packet(payload=ZeroPayload(64)))
        sim.run()
        # intr_assert (20) + interrupt_entry (6) before the ISR runs.
        assert len(seen) == 1
        assert sim.now >= nic.timing.intr_assert
        assert nic.interrupts == 1

    def test_burst_shares_one_interrupt(self, sim, host):
        nic, seen = self._nic_with_sink(sim, host)
        for _ in range(5):
            nic._rx_ready(Packet(payload=ZeroPayload(64)))
        sim.run()
        assert len(seen) == 5
        assert nic.interrupts == 1

    def test_sustained_load_rate_limited(self, sim, host):
        nic, seen = self._nic_with_sink(sim, host)

        def feeder():
            for _ in range(40):
                nic._rx_ready(Packet(payload=ZeroPayload(64)))
                yield sim.timeout(10)      # 10 µs apart, window is 40 µs

        sim.process(feeder())
        sim.run()
        assert len(seen) == 40
        # ~400 µs of arrivals / 40 µs window -> about 10 interrupts.
        assert nic.interrupts <= 14


class TestProgrammableNicChassis:
    def test_cycle_counter_mean_and_reset(self, sim, host):
        nic = ProgrammableNic(sim, host)
        nic.stage("x", 2.0)
        nic.stage("x", 4.0)
        sim.run()
        assert nic.cycles.mean("x") == pytest.approx(3.0)
        nic.reset_stats()
        assert nic.cycles.mean("x") == 0.0
        assert nic.occupancy() == 0.0

    def test_doorbell_and_mgmt_wake_firmware(self, sim, host):
        nic = ProgrammableNic(sim, host)
        woken = []
        nic.wake = lambda: woken.append(sim.now)
        nic.ring_doorbell((1, "send"))
        nic.post_mgmt(object())
        assert len(woken) == 2
        assert nic.doorbells_rung == 1

    def test_timing_variants_differ(self):
        base = LanaiTiming()
        fw = lanai_fw_checksum()
        ib = ib_class_timing()
        assert base.rx_checksum_per_byte is None
        assert fw.rx_checksum_per_byte > 0
        assert ib.overlap_dma and not base.overlap_dma
        assert ib.tcp_parse_ack < base.tcp_parse_ack

    def test_wire_time_without_link_is_zero(self, sim, host):
        nic = ProgrammableNic(sim, host)
        assert nic.wire_time(Packet(payload=ZeroPayload(100))) == 0.0


class TestGmNicFirmwareHop:
    def test_every_packet_crosses_the_firmware(self, sim, host):
        nic = GmNic(sim, host, name="myri0")
        from repro.fabric.link import Attachment, Link
        sink_log = []
        peer = Attachment("peer", lambda p, a: sink_log.append(sim.now))
        Link(sim, nic.attachment, peer, bandwidth=250.0)
        for _ in range(3):
            nic.transmit(Packet(payload=ZeroPayload(1000)))
        sim.run()
        assert len(sink_log) == 3
        assert nic.firmware.items_completed == 3
        assert nic.firmware.busy_time == pytest.approx(
            3 * nic.timing.fw_per_packet_tx)
