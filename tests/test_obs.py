"""Tests for the repro.obs subsystem: recorder, exports, query API."""

import json
import struct

import pytest

from repro import obs
from repro.bench.configs import build_qpip_pair
from repro.obs import (MetricsRegistry, TraceAssertionError, TraceQuery,
                       TraceRecorder)
from repro.sim import Simulator
from repro.tools import Wiretap


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test must leave the global recorder uninstalled."""
    yield
    assert obs.RECORDER is None
    obs.uninstall()


class TestRecorder:
    def test_install_uninstall(self, sim):
        assert obs.RECORDER is None
        rec = obs.install(sim)
        assert obs.RECORDER is rec
        assert obs.uninstall() is rec
        assert obs.RECORDER is None

    def test_capture_scopes_the_global(self, sim):
        with obs.capture(sim) as rec:
            assert obs.RECORDER is rec
        assert obs.RECORDER is None

    def test_events_carry_sim_time(self, sim):
        rec = TraceRecorder(sim)
        sim.call_later(7.5, lambda: rec.event("c", "n", x=1))
        sim.run()
        (ev,) = rec.records
        assert (ev.ts, ev.ph, ev.cat, ev.name) == (7.5, "i", "c", "n")
        assert ev.fields == {"x": 1}

    def test_span_ids_are_stable_and_sequential(self, sim):
        rec = TraceRecorder(sim)
        s1 = rec.begin("c", "a", key=("k", 1))
        s2 = rec.begin("c", "b", key=("k", 2))
        assert (s1, s2) == (1, 2)
        assert rec.open_spans() == 2
        assert rec.end(("k", 1)) == 0.0
        assert rec.open_spans() == 1

    def test_end_reports_elapsed_sim_time(self, sim):
        rec = TraceRecorder(sim)
        rec.begin("c", "a", key=("k",))
        sim.call_later(12.0, lambda: None)
        sim.run()
        assert rec.end(("k",)) == 12.0

    def test_orphan_end_is_recorded_not_raised(self, sim):
        rec = TraceRecorder(sim)
        assert rec.end(("nope",)) is None
        assert rec.records[-1].name == "orphan_end"

    def test_rebegin_closes_stale_span(self, sim):
        rec = TraceRecorder(sim)
        rec.begin("c", "a", key=("k",))
        rec.begin("c", "a", key=("k",))
        assert rec.open_spans() == 1
        ends = [ev for ev in rec.records if ev.ph == "e"]
        assert len(ends) == 1 and ends[0].fields == {"abandoned": True}

    def test_capacity_bound(self, sim):
        rec = TraceRecorder(sim, capacity=3)
        for i in range(5):
            rec.event("c", f"n{i}")
        assert len(rec.records) == 3
        assert rec.dropped == 2


class TestExports:
    def _small_trace(self, sim):
        rec = TraceRecorder(sim)
        rec.begin("verbs", "wr.send", key=("wr", 1), track="hostA")
        rec.complete("fw.stage", "get_wr", 5.5, track="nicA")
        rec.event("link", "link.tx", track="l0", pkt=3, bytes=100)
        rec.end(("wr", 1), status="SUCCESS")
        return rec

    def test_jsonl_round_trips(self, sim, tmp_path):
        rec = self._small_trace(sim)
        path = tmp_path / "t.jsonl"
        assert rec.to_jsonl(str(path)) == 4
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["ph"] for l in lines] == ["b", "X", "i", "e"]
        assert lines[0]["span"] == lines[3]["span"] == 1
        assert lines[1]["dur"] == 5.5
        assert lines[2]["fields"] == {"pkt": 3, "bytes": 100}

    def test_chrome_trace_shape(self, sim, tmp_path):
        rec = self._small_trace(sim)
        path = tmp_path / "t.json"
        rec.to_chrome(str(path))
        doc = json.loads(path.read_text())
        evs = doc["traceEvents"]
        # Metadata names the process and each track-thread.
        assert evs[0] == {"ph": "M", "pid": 1, "tid": 0,
                          "name": "process_name",
                          "args": {"name": "repro simulation"}}
        thread_names = {e["args"]["name"] for e in evs
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"hostA", "nicA", "l0"} <= thread_names
        b = next(e for e in evs if e["ph"] == "b")
        e = next(e for e in evs if e["ph"] == "e")
        assert b["id"] == e["id"]
        assert b["cat"] == e["cat"] == "verbs"
        x = next(e for e in evs if e["ph"] == "X")
        assert x["dur"] == 5.5
        inst = next(e for e in evs if e["ph"] == "i")
        assert inst["s"] == "t"


class TestPcapngExport:
    def _walk_blocks(self, raw):
        blocks = []
        off = 0
        while off < len(raw):
            btype, blen = struct.unpack_from("<II", raw, off)
            assert blen % 4 == 0
            (trailer,) = struct.unpack_from("<I", raw, off + blen - 4)
            assert trailer == blen
            blocks.append((btype, raw[off:off + blen]))
            off += blen
        return blocks

    def test_structure_and_timestamps(self, sim, tmp_path):
        from repro.apps.pingpong import qpip_tcp_rtt
        a, b, _f = build_qpip_pair(sim)
        tap = Wiretap(sim)
        tap.attach_qpip_nic(a.nic)
        qpip_tcp_rtt(sim, a, b, iterations=3)
        path = tmp_path / "c.pcapng"
        n = tap.write_pcapng(str(path))
        assert n == len(tap) > 0
        blocks = self._walk_blocks(path.read_bytes())
        types = [t for t, _ in blocks]
        assert types[0] == 0x0A0D0D0A                  # SHB
        assert types[1] == 0x00000001                  # IDB
        assert types.count(0x00000006) == n            # one EPB per packet
        # SHB: byte-order magic and version 1.0.
        magic, major, minor = struct.unpack_from("<IHH", blocks[0][1], 8)
        assert (magic, major, minor) == (0x1A2B3C4D, 1, 0)
        # IDB: raw-IP linktype (Myrinet header stripped), tsresol option = 9.
        (linktype,) = struct.unpack_from("<H", blocks[1][1], 8)
        assert linktype == 101
        assert b"\x09\x00\x01\x00\x09" in blocks[1][1]  # if_tsresol: 10^-9
        # EPBs: ns timestamps match the tap records, lengths honest.
        epbs = [body for t, body in blocks if t == 0x00000006]
        for rec, body in zip(tap.records, epbs):
            _iface, hi, lo, cap, orig = struct.unpack_from("<IIIII", body, 8)
            assert (hi << 32) | lo == round(rec.time * 1000)
            assert cap == orig

    def test_ethernet_capture_keeps_linktype_1(self, sim, tmp_path):
        from repro.apps.pingpong import socket_tcp_rtt
        from repro.bench.configs import build_gige_pair
        a, b, _f = build_gige_pair(sim)
        tap = Wiretap(sim)
        tap.attach_dumb_nic(a.nic)
        socket_tcp_rtt(sim, a, b, iterations=2)
        path = tmp_path / "e.pcapng"
        tap.write_pcapng(str(path))
        blocks = self._walk_blocks(path.read_bytes())
        (linktype,) = struct.unpack_from("<H", blocks[1][1], 8)
        assert linktype == 1


class TestTraceQuery:
    def _query(self, sim):
        rec = TraceRecorder(sim)
        rec.event("verbs", "wr.post", qp=3)
        sim.call_later(10.0, lambda: rec.event("fw", "fw.fetch_wr", qp=3))
        sim.call_later(25.0, lambda: rec.event("verbs", "cqe", qp=3))
        sim.run()
        return TraceQuery(rec)

    def test_events_filters(self, sim):
        q = self._query(sim)
        assert q.count(cat="verbs") == 2
        assert q.count(name="cqe") == 1
        assert q.count(cat="fw", qp=3) == 1
        assert q.count(cat="fw", qp=4) == 0
        assert q.first(cat="verbs").name == "wr.post"
        assert q.last(cat="verbs").name == "cqe"

    def test_span_order_passes_on_subsequence(self, sim):
        q = self._query(sim)
        got = q.assert_span_order("wr.post", "fw.fetch_wr", "cqe")
        assert [e.ts for e in got] == [0.0, 10.0, 25.0]
        # A subsequence with gaps is fine too.
        q.assert_span_order("wr.post", "cqe")

    def test_span_order_fails_on_wrong_order(self, sim):
        q = self._query(sim)
        with pytest.raises(TraceAssertionError, match="not found"):
            q.assert_span_order("cqe", "wr.post")

    def test_no_event(self, sim):
        q = self._query(sim)
        q.assert_no_event(name="tcp.rto")
        q.assert_no_event(name="wr.post", after=5.0)
        with pytest.raises(TraceAssertionError, match="forbidden"):
            q.assert_no_event(name="cqe")

    def test_latency_between(self, sim):
        q = self._query(sim)
        assert q.assert_latency_between("wr.post", "cqe", max_us=30.0) == 25.0
        with pytest.raises(TraceAssertionError, match="outside"):
            q.assert_latency_between("wr.post", "fw.fetch_wr", max_us=5.0)
        with pytest.raises(TraceAssertionError, match="no 'nope'"):
            q.assert_latency_between("nope", "cqe", max_us=1.0)


class TestMetricsRegistry:
    def test_instruments_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a.count").add(3)
        reg.gauge("a.depth").set(2.0)
        reg.gauge("a.depth").set(5.0)
        reg.histogram("a.lat").add(1.0)
        reg.histogram("a.lat").add(3.0)
        snap = reg.snapshot()
        assert snap["a.count"] == 3
        assert snap["a.depth"] == {"value": 5.0, "min": 2.0, "max": 5.0}
        assert snap["a.lat"]["count"] == 2
        assert snap["a.lat"]["p50"] == 1.0
        assert "a.count" in reg.render()

    def test_name_collision_across_kinds_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_empty_histogram_percentile_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h").percentile(50)


class TestTracedWorkloadAcceptance:
    """The ISSUE acceptance criterion: one traced ttcp run produces a
    Perfetto-loadable trace, a Wireshark-loadable pcapng, and a metrics
    report — and the trace follows a WR across every layer."""

    def test_ttcp_artifacts_and_cross_layer_spans(self, tmp_path):
        from repro.obs.runner import render_summary, run_traced
        summary = run_traced(workload="ttcp", out_dir=str(tmp_path),
                             total_bytes=64 * 1024, chunk=8192)
        arts = summary["artifacts"]
        # Perfetto-loadable: valid JSON with a traceEvents list.
        doc = json.loads(open(arts["trace_chrome"]).read())
        assert isinstance(doc["traceEvents"], list)
        assert any(e.get("ph") == "b" for e in doc["traceEvents"])
        # Wireshark-loadable: starts with an SHB and parses block-by-block.
        raw = open(arts["pcapng"], "rb").read()
        assert raw[:4] == b"\x0a\x0d\x0d\x0a"
        # Metrics report mentions cross-layer instruments.
        report = open(arts["metrics"]).read()
        for needle in ("verbs.send_posted", "fw.send_fetched", "link.pkts",
                       "fabric.switch_fwd", "cq.cqe", "wr.send.latency_us"):
            assert needle in report
        # The JSONL stream shows a WR's cross-layer causal path.
        events = [json.loads(l) for l in open(arts["trace_jsonl"])]
        q = TraceQuery([_ev_from_dict(d) for d in events])
        q.assert_span_order("wr.send", "fw.fetch_wr", "nic.tx",
                            "switch.fwd", "nic.rx", "fw.deliver", "cqe")
        assert summary["events"] == len(events)
        assert "wrote" in render_summary(summary)

    def test_pingpong_summary_without_artifacts(self, tmp_path):
        from repro.obs.runner import run_traced
        summary = run_traced(workload="pingpong", iterations=4,
                             out_dir=str(tmp_path), write_artifacts=False)
        assert "artifacts" not in summary
        assert summary["iterations"] == 4
        assert summary["metrics"]["qp.established"] >= 1

    def test_unknown_workload_rejected(self):
        from repro.obs.runner import run_traced
        with pytest.raises(ValueError):
            run_traced(workload="nbd")


def _ev_from_dict(d):
    from repro.obs.trace import TraceEvent
    return TraceEvent(d["ts"], d["ph"], d.get("cat", ""), d.get("name", ""),
                      span=d.get("span"), dur=d.get("dur"),
                      track=d.get("track", ""), fields=d.get("fields"))
