"""Property tests: the precompiled header codecs are byte-for-byte
identical to the naive per-field serializers.

Every header class gained a fastpath-gated encode built on module-level
``struct.Struct`` objects; the naive ``struct.pack`` bodies are the
oracle.  Hypothesis drives randomized field values through both branches
and asserts identical wire bytes, plus decode round-trips and the
odd-length payload / checksum-tail edges the word-folding checksum has
to get right.
"""

from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.net.addresses import IPv4Address, IPv6Address, MacAddress
from repro.net.checksum import ones_complement_sum
from repro.net.headers.ip import IPv4Header, IPv6Header, PROTO_TCP
from repro.net.headers.link import EthernetHeader, MyrinetHeader
from repro.net.headers.transport import (TCPHeader, UDPHeader,
                                         tcp_fill_checksum,
                                         tcp_verify_checksum,
                                         udp_fill_checksum,
                                         udp_verify_checksum)
from repro.net.packet import BytesPayload

u16 = st.integers(min_value=0, max_value=0xFFFF)
u8 = st.integers(min_value=0, max_value=0xFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def both_encodings(hdr_factory):
    """Encode a fresh header under each mode (fresh per mode: encode
    caches wire bytes on the instance)."""
    with fastpath.forced(True):
        fast = hdr_factory().encode()
    with fastpath.forced(False):
        naive = hdr_factory().encode()
    return fast, naive


sack_block = st.tuples(u32, u32)


def _option_len(fields) -> int:
    """Encoded (padded) option length for a field dict."""
    n = 0
    if fields["mss"] is not None:
        n += 4
    if fields["wscale"] is not None:
        n += 4
    if fields["sack_permitted"]:
        n += 4
    if fields["ts_val"] is not None:
        n += 12
    blocks = fields["sack_blocks"][:3]
    if blocks:
        n += 4 + 8 * len(blocks)
    return n


tcp_headers = st.builds(
    dict,
    src_port=u16, dst_port=u16,
    seq=u32, ack=u32, flags=u8, window=u16, checksum=u16, urgent=u16,
    mss=st.none() | u16,
    wscale=st.none() | st.integers(min_value=0, max_value=14),
    sack_permitted=st.booleans(),
    ts_val=st.none() | u32,
    ts_ecr=st.none() | u32,
    sack_blocks=st.lists(sack_block, max_size=4),
    # The 4-bit data offset caps a legal TCP header at 60 bytes; the
    # stack never combines every option, and neither may the strategy.
).filter(lambda f: _option_len(f) <= 40)


class TestTCPCodec:
    @settings(max_examples=200, deadline=None)
    @given(fields=tcp_headers)
    def test_fast_encode_matches_naive(self, fields):
        fast, naive = both_encodings(lambda: TCPHeader(**fields))
        assert fast == naive

    @settings(max_examples=100, deadline=None)
    @given(fields=tcp_headers)
    def test_decode_roundtrip(self, fields):
        wire = TCPHeader(**fields).encode()
        decoded, consumed = TCPHeader.decode(wire)
        assert consumed == len(wire)
        assert decoded.encode() == wire

    def test_steady_state_ts_only_shape(self):
        # The special-cased NOP NOP TS fast shape: 12 option bytes.
        fast, naive = both_encodings(
            lambda: TCPHeader(1, 2, seq=3, ack=4, flags=0x10,
                              ts_val=123456, ts_ecr=654321))
        assert fast == naive
        assert len(fast) == 20 + 12

    def test_ts_ecr_none_encodes_as_zero(self):
        fast, naive = both_encodings(
            lambda: TCPHeader(1, 2, ts_val=7, ts_ecr=None))
        assert fast == naive

    def test_sack_blocks_truncated_to_max(self):
        blocks = [(i, i + 10) for i in range(6)]
        fast, naive = both_encodings(
            lambda: TCPHeader(1, 2, ts_val=9, sack_blocks=blocks))
        assert fast == naive


class TestUDPCodec:
    @settings(max_examples=100, deadline=None)
    @given(src=u16, dst=u16, length=st.integers(min_value=8, max_value=0xFFFF),
           csum=u16)
    def test_fast_encode_matches_naive(self, src, dst, length, csum):
        fast, naive = both_encodings(lambda: UDPHeader(src, dst, length, csum))
        assert fast == naive
        decoded, consumed = UDPHeader.decode(fast)
        assert consumed == 8
        assert decoded.encode() == fast


class TestIPv4Codec:
    @settings(max_examples=150, deadline=None)
    @given(src=st.binary(min_size=4, max_size=4),
           dst=st.binary(min_size=4, max_size=4),
           total_length=st.integers(min_value=20, max_value=0xFFFF),
           ident=u16, ttl=st.integers(min_value=1, max_value=255),
           dscp=u8, df=st.booleans(), mf=st.booleans(),
           frag=st.integers(min_value=0, max_value=0x1FFF))
    def test_fast_encode_matches_naive(self, src, dst, total_length, ident,
                                       ttl, dscp, df, mf, frag):
        def make():
            return IPv4Header(IPv4Address(src), IPv4Address(dst), PROTO_TCP,
                              total_length=total_length, identification=ident,
                              ttl=ttl, dscp=dscp, flags_df=df, flags_mf=mf,
                              frag_offset=frag)
        fast, naive = both_encodings(make)
        assert fast == naive
        # The embedded header checksum verifies (decode raises otherwise).
        decoded, consumed = IPv4Header.decode(fast)
        assert consumed == 20
        assert decoded.encode() == fast


class TestIPv6Codec:
    @settings(max_examples=150, deadline=None)
    @given(src=st.binary(min_size=16, max_size=16),
           dst=st.binary(min_size=16, max_size=16),
           payload_length=u16, hop=st.integers(min_value=1, max_value=255),
           tc=u8, flow=st.integers(min_value=0, max_value=0xFFFFF))
    def test_fast_encode_matches_naive(self, src, dst, payload_length,
                                       hop, tc, flow):
        def make():
            return IPv6Header(IPv6Address(src), IPv6Address(dst), PROTO_TCP,
                              payload_length=payload_length, hop_limit=hop,
                              traffic_class=tc, flow_label=flow)
        fast, naive = both_encodings(make)
        assert fast == naive
        decoded, consumed = IPv6Header.decode(fast)
        assert consumed == 40
        assert decoded.encode() == fast


class TestLinkCodecs:
    @settings(max_examples=50, deadline=None)
    @given(dst=st.binary(min_size=6, max_size=6),
           src=st.binary(min_size=6, max_size=6), etype=u16)
    def test_ethernet(self, dst, src, etype):
        fast, naive = both_encodings(
            lambda: EthernetHeader(MacAddress(dst), MacAddress(src), etype))
        assert fast == naive
        decoded, consumed = EthernetHeader.decode(fast)
        assert consumed == 14
        assert decoded.encode() == fast

    @settings(max_examples=50, deadline=None)
    @given(route=st.lists(u8, max_size=8), ptype=u16)
    def test_myrinet(self, route, ptype):
        fast, naive = both_encodings(lambda: MyrinetHeader(route, ptype))
        assert fast == naive
        decoded, consumed = MyrinetHeader.decode(fast)
        assert consumed == len(fast)
        assert decoded.encode() == fast


class TestChecksumEdges:
    """The codecs compose with the word-folding checksum: odd-length
    payloads exercise the big-endian tail-byte rule, and stored-checksum
    verification exercises the non-mutating subtract path."""

    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(min_size=0, max_size=65),
           src=st.binary(min_size=16, max_size=16),
           dst=st.binary(min_size=16, max_size=16))
    def test_tcp_checksum_odd_payload_fast_vs_naive(self, body, src, dst):
        from repro.net.checksum import pseudo_header_v6

        def filled(flag):
            with fastpath.forced(flag):
                hdr = TCPHeader(5, 6, seq=1, ack=2, flags=0x18, ts_val=3)
                payload = BytesPayload(body)
                pseudo = pseudo_header_v6(
                    src, dst, hdr.header_len() + payload.length, PROTO_TCP)
                tcp_fill_checksum(hdr, pseudo, payload)
                assert tcp_verify_checksum(hdr, pseudo, payload)
                return hdr.encode()

        assert filled(True) == filled(False)

    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(min_size=0, max_size=65),
           src=st.binary(min_size=4, max_size=4),
           dst=st.binary(min_size=4, max_size=4))
    def test_udp_checksum_odd_payload_fast_vs_naive(self, body, src, dst):
        from repro.net.checksum import pseudo_header_v4

        def filled(flag):
            with fastpath.forced(flag):
                hdr = UDPHeader(5, 6, length=8 + len(body))
                payload = BytesPayload(body)
                pseudo = pseudo_header_v4(src, dst, hdr.length, 17)
                udp_fill_checksum(hdr, pseudo, payload)
                assert udp_verify_checksum(hdr, pseudo, payload)
                return hdr.encode()

        assert filled(True) == filled(False)

    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(min_size=0, max_size=67), initial=u16)
    def test_ones_complement_sum_fast_vs_naive(self, data, initial):
        with fastpath.forced(True):
            fast = ones_complement_sum(data, initial)
        with fastpath.forced(False):
            naive = ones_complement_sum(data, initial)
        assert fast == naive
