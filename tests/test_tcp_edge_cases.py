"""TCP state-machine edge cases and adversarial scenarios."""

import pytest

from repro.errors import ConnectionReset
from repro.net.headers.transport import ACK, FIN, RST, SYN, TCPHeader
from repro.net.packet import BytesPayload, ZeroPayload
from repro.net.tcp import TcpConfig, TcpState
from repro.sim import Simulator

from helpers_tcp import PipeCtx, establish, make_pair


@pytest.fixture
def sim():
    return Simulator()


class TestHeaderPrediction:
    def test_clean_transfer_is_mostly_fast_path(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(mss=1000), TcpConfig(mss=1000))
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(50_000))
        sim.run(until=sim.now + 5_000_000)
        rs = sctx.conn.stats
        # Receiver: nearly every segment was predicted in-order data.
        assert rs.fastpath_data > 40
        assert rs.fastpath_data > 10 * rs.slowpath
        # Sender: nearly every inbound segment was a predicted ACK.
        cs = cctx.conn.stats
        assert cs.fastpath_ack >= 5           # cumulative ACKs batch heavily
        assert cs.fastpath_ack > 3 * cs.slowpath

    def test_out_of_order_goes_slow_path(self, sim):
        cfg = TcpConfig(mss=1000, reassembly=True, min_rto=1_000_000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        state = {"dropped": False}

        def drop_one(hdr, payload):
            if payload.length and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        cctx.loss_filter = drop_one
        for i in range(6):
            cctx.conn.send_message(ZeroPayload(500), msg_id=i) \
                if cfg.message_mode else cctx.conn.send_stream(ZeroPayload(500))
        sim.run(until=sim.now + 2_000_000)
        assert sctx.conn.stats.slowpath >= 1   # the gap segments


class TestRstScenarios:
    def test_rst_mid_transfer_aborts_both(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(1000))
        sim.run(until=sim.now + 50_000)
        sctx.conn.abort()
        sim.run(until=sim.now + 100_000)
        assert cctx.reset_exc is not None
        assert cctx.conn.state is TcpState.CLOSED

    def test_blind_rst_outside_window_ignored(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        # Forge an RST far outside the receive window.
        forged = TCPHeader(cctx.conn.tuple.local.port,
                           cctx.conn.tuple.remote.port,
                           seq=(sctx.conn.rcv_nxt + 1_000_000) & 0xFFFFFFFF,
                           flags=RST)
        sctx.conn.handle_segment(forged, ZeroPayload(0))
        sim.run(until=sim.now + 10_000)
        assert sctx.conn.state is TcpState.ESTABLISHED
        assert sctx.reset_exc is None

    def test_in_window_syn_resets(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        forged = TCPHeader(cctx.conn.tuple.local.port,
                           cctx.conn.tuple.remote.port,
                           seq=sctx.conn.rcv_nxt, ack=sctx.conn.snd_una,
                           flags=SYN | ACK)
        sctx.conn.handle_segment(forged, ZeroPayload(0))
        assert sctx.conn.state is TcpState.CLOSED
        assert sctx.reset_exc is not None


class TestCloseEdges:
    def test_fin_retransmitted_when_lost(self, sim):
        cfg = TcpConfig(min_rto=20_000)
        cctx, sctx = make_pair(sim, cfg, TcpConfig())
        establish(sim, cctx, sctx)
        state = {"dropped": False}

        def drop_first_fin(hdr, payload):
            if hdr.flag(FIN) and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        cctx.loss_filter = drop_first_fin
        cctx.conn.close()
        sim.run(until=sim.now + 5_000_000)
        assert state["dropped"]
        assert sctx.remote_fin                 # retransmitted FIN arrived
        assert cctx.conn.state in (TcpState.FIN_WAIT_2, TcpState.TIME_WAIT,
                                   TcpState.CLOSED)

    def test_time_wait_acks_retransmitted_fin(self, sim):
        cfg = TcpConfig(msl=50_000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        cctx.conn.close()
        sim.run(until=sim.now + 50_000)
        sctx.conn.close()
        sim.run(until=sim.now + 20_000)
        assert cctx.conn.state is TcpState.TIME_WAIT
        # The server's FIN shows up again (ACK lost, say).
        fin = TCPHeader(sctx.conn.tuple.local.port,
                        sctx.conn.tuple.remote.port,
                        seq=(sctx.conn.snd_nxt - 1) & 0xFFFFFFFF,
                        ack=sctx.conn.rcv_nxt, flags=FIN | ACK)
        acks_before = len([s for s in cctx.sent if s[2] == 0])
        cctx.conn.handle_segment(fin, ZeroPayload(0))
        sim.run(until=sim.now + 10_000)
        acks_after = len([s for s in cctx.sent if s[2] == 0])
        assert acks_after > acks_before        # re-ACKed from TIME_WAIT

    def test_close_while_data_unacked_still_delivers(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(mss=1000), TcpConfig(mss=1000))
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(10_000))
        cctx.conn.close()                      # FIN queued behind the data
        sim.run(until=sim.now + 5_000_000)
        assert len(sctx.delivered_bytes) == 10_000
        assert sctx.remote_fin

    def test_send_after_close_raises(self, sim):
        cctx, sctx = make_pair(sim)
        establish(sim, cctx, sctx)
        cctx.conn.close()
        with pytest.raises(ConnectionReset):
            cctx.conn.send_stream(ZeroPayload(10))


class TestWindowEdges:
    def test_window_never_shrinks_past_promise(self, sim):
        # Once advertised, window edge must not retreat even if credit drops.
        cfg = TcpConfig(message_mode=True, mss=1000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        sctx.conn.enable_credit_window(8000)
        establish(sim, cctx, sctx)
        sim.run(until=sim.now + 10_000)
        edge_before = sctx.conn.rcv_adv
        sctx.conn.set_receive_credit(0)        # app tears down its buffers
        cctx.conn.send_message(ZeroPayload(500), msg_id=0)
        sim.run(until=sim.now + 100_000)
        # The promised window still admitted the message.
        assert len(sctx.delivered) == 1
        assert not pytest.approx(0) == edge_before

    def test_tiny_receive_buffer_trickles(self, sim):
        cfg_s = TcpConfig(mss=1000, recv_buffer=1500)
        cctx, sctx = make_pair(sim, TcpConfig(mss=1000), cfg_s)
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(30_000))
        sim.run(until=sim.now + 30_000_000)
        assert len(sctx.delivered_bytes) == 30_000   # slow but complete


class TestSimultaneousOpen:
    def test_both_sides_syn(self, sim):
        cctx, sctx = make_pair(sim)
        # Both actively open toward each other at once.
        cctx.conn.connect()
        sctx.conn.connect()
        sim.run(until=sim.now + 5_000_000)
        # RFC 793 simultaneous open: both should land in ESTABLISHED.
        assert cctx.conn.state is TcpState.ESTABLISHED
        assert sctx.conn.state is TcpState.ESTABLISHED
        cctx.conn.send_stream(BytesPayload(b"sim-open"))
        sim.run(until=sim.now + 1_000_000)
        assert sctx.delivered_bytes == b"sim-open"


class TestTimestampBehaviour:
    def test_ts_recent_tracks_peer_clock(self, sim):
        cctx, sctx = make_pair(sim, TcpConfig(), TcpConfig())
        establish(sim, cctx, sctx)
        for _ in range(5):
            cctx.conn.send_stream(ZeroPayload(100))
            sim.run(until=sim.now + 10_000)
        assert sctx.conn.ts_recent >= 0
        # Echoed timestamps appear on the wire.
        data_segs = [h for _, h, l in cctx.sent if l > 0]
        assert all(h.ts_val is not None for h in data_segs)

    def test_no_timestamps_when_disabled(self, sim):
        cfg = TcpConfig(use_timestamps=False)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        cctx.conn.send_stream(ZeroPayload(100))
        sim.run(until=sim.now + 100_000)
        data_segs = [h for _, h, l in cctx.sent if l > 0]
        assert all(h.ts_val is None for h in data_segs)
