"""Coverage for support modules: units, report rendering, CLI, runners."""

import pytest

from repro import units
from repro.bench.report import compare, pct, render_table
from repro.cli import EXPERIMENTS, build_parser, main


class TestUnits:
    def test_time_conversions(self):
        assert units.seconds(2_000_000) == 2.0
        assert units.usec(1.5) == 1_500_000
        assert units.MS == 1000
        assert units.NS == 0.001

    def test_rates(self):
        assert units.gbit_per_sec(2.0) == pytest.approx(250.0)
        assert units.mbit_per_sec(100) == pytest.approx(12.5)
        assert units.mb_per_sec(1) == pytest.approx(1.048576)
        # Round trip.
        assert units.to_mb_per_sec(units.mb_per_sec(75.6)) == pytest.approx(75.6)

    def test_cycles(self):
        assert units.us_to_cycles(2.5, 550) == 1375
        assert units.cycles_to_us(1375, 550) == pytest.approx(2.5)
        assert units.us_to_cycles(units.cycles_to_us(16445, 550), 550) == 16445


class TestReport:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bee"], [["x", 1], ["long", 22]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bee" in lines[1]
        assert len(lines) == 5
        # Columns align: every row has the same prefix width for col 2.
        assert lines[2].startswith("-")

    def test_render_empty_rows(self):
        out = render_table("Empty", ["col"], [])
        assert "Empty" in out

    def test_compare(self):
        cell = compare(50.0, 100.0)
        assert "paper 100" in cell and "x0.50" in cell
        assert compare(3.0, None) == "3.0"

    def test_pct(self):
        assert pct(0.756) == "75.6%"


class TestCli:
    def test_parser_lists_all_experiments(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name] if name != "fig7"
                                     else [name, "--mb", "1"])
            assert args.command == name

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_run_table1_via_cli(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Host-based IP" in out
        assert "QPIP" in out


class TestRunnersSmoke:
    """Small-size smoke runs for the experiment runners (full-size runs
    live in benchmarks/)."""

    def test_fig3_structure(self):
        from repro.bench import run_fig3
        result = run_fig3(iterations=10)
        assert len(result.rows) == 6
        assert result.measured("QPIP", "tcp") > 0
        assert "Figure 3" in result.render()

    def test_fig4_structure(self):
        from repro.bench import run_fig4
        from repro.units import MB
        result = run_fig4(total_bytes=1 * MB)
        mbps, cpu = result.measured("QPIP")
        assert mbps > 0 and 0 <= cpu <= 1
        assert "Figure 4" in result.render()

    def test_mtu_sweep_structure(self):
        from repro.bench import run_mtu_sweep
        from repro.units import MB
        result = run_mtu_sweep(total_bytes=1 * MB, mtus=(1500, 16384))
        assert result.measured(1500) < result.measured(16384)
        assert "MTU" in result.render()

    def test_table1_structure(self):
        from repro.bench import run_table1
        result = run_table1(iterations=20)
        assert result.qpip_us < result.host_based_us
        assert result.qpip_cycles == round(result.qpip_us * 550)
        assert "Table 1" in result.render()

    def test_occupancy_structure(self):
        from repro.bench import run_occupancy_tables
        result = run_occupancy_tables(messages=10)
        data, ack = result.stage_tx("Get WR")
        assert data == pytest.approx(5.5)
        assert ack is None
        assert "Table 2" in result.render() and "Table 3" in result.render()

    def test_fig7_structure(self):
        from repro.bench import run_fig7
        from repro.units import MB
        result = run_fig7(total_bytes=4 * MB, systems=("QPIP",))
        mbps, eff, fs = result.measured("QPIP", "read")
        assert mbps > 0 and eff > 0 and 0 < fs < 1
        assert "Figure 7" in result.render()

    def test_hw_ablation_structure(self):
        from repro.bench import run_hw_ablation
        from repro.units import MB
        result = run_hw_ablation(total_bytes=1 * MB)
        names = [r[0] for r in result.rows]
        assert "Infiniband-class" in names
        assert "ablation" in result.render()
