"""Tests for links, switches, and topology route computation."""

import pytest

from repro.errors import ConfigError, RouteError
from repro.fabric import (Attachment, EthernetFabric, EthernetSwitch, Link,
                          MyrinetFabric, MyrinetSwitch)
from repro.net.addresses import MacAddress
from repro.net.headers.link import EthernetHeader, MyrinetHeader
from repro.net.packet import Packet, ZeroPayload
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def sink(log):
    def on_receive(pkt, at):
        log.append((at.link.sim.now, pkt))
    return on_receive


def mk_packet(size=1000, route=None):
    pkt = Packet(payload=ZeroPayload(size))
    if route is not None:
        pkt.push(MyrinetHeader(route=list(route)))
        pkt.route = list(route)
    return pkt


class TestLink:
    def test_serialization_plus_propagation(self, sim):
        log = []
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", sink(log))
        Link(sim, a, b, bandwidth=100.0, propagation=2.0)  # 100 B/us
        pkt = mk_packet(1000)
        a.transmit(pkt)
        sim.run()
        assert log[0][0] == pytest.approx(1000 / 100 + 2.0)

    def test_fifo_serialization_backlog(self, sim):
        log = []
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", sink(log))
        Link(sim, a, b, bandwidth=100.0, propagation=0.0)
        a.transmit(mk_packet(1000))
        a.transmit(mk_packet(1000))
        sim.run()
        assert [t for t, _ in log] == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_full_duplex_no_interference(self, sim):
        log_a, log_b = [], []
        a = Attachment("a", sink(log_a))
        b = Attachment("b", sink(log_b))
        Link(sim, a, b, bandwidth=100.0, propagation=0.0)
        a.transmit(mk_packet(1000))
        b.transmit(mk_packet(1000))
        sim.run()
        assert log_a[0][0] == pytest.approx(10.0)
        assert log_b[0][0] == pytest.approx(10.0)

    def test_cut_through_receiver_sees_header_early(self, sim):
        log = []
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", sink(log), rx_mode="cut_through")
        Link(sim, a, b, bandwidth=100.0, propagation=1.0)
        a.transmit(mk_packet(8000))
        sim.run()
        # 16 header bytes at 100 B/us + 1 us propagation, not 80 us.
        assert log[0][0] == pytest.approx(16 / 100 + 1.0)

    def test_loss_hook_drops(self, sim):
        log = []
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", sink(log))
        link = Link(sim, a, b, bandwidth=100.0)
        link.set_loss(a, lambda pkt: True)
        a.transmit(mk_packet(100))
        sim.run()
        assert not log
        assert link.direction_from(a).packets_dropped == 1

    def test_stats_and_utilization(self, sim):
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", lambda p, at: None)
        link = Link(sim, a, b, bandwidth=100.0, propagation=0.0)
        a.transmit(mk_packet(500))
        sim.run()
        d = link.direction_from(a)
        assert d.bytes_sent == 500
        assert d.packets_sent == 1
        assert d.utilization(0, 10.0) == pytest.approx(0.5)

    def test_transmit_without_link_raises(self):
        a = Attachment("a", lambda p, at: None)
        with pytest.raises(ConfigError):
            a.transmit(mk_packet(10))

    def test_bad_params_rejected(self, sim):
        a = Attachment("a", lambda p, at: None)
        b = Attachment("b", lambda p, at: None)
        with pytest.raises(ConfigError):
            Link(sim, a, b, bandwidth=0)
        with pytest.raises(ConfigError):
            Attachment("x", lambda p, at: None, rx_mode="warp")


class TestMyrinetSwitch:
    def test_source_routed_forwarding(self, sim):
        sw = MyrinetSwitch(sim, 4, latency=0.5)
        log = []
        host_a = Attachment("ha", lambda p, at: None)
        host_b = Attachment("hb", sink(log))
        Link(sim, host_a, sw.port(0), bandwidth=250.0, propagation=0.1)
        Link(sim, host_b, sw.port(2), bandwidth=250.0, propagation=0.1)
        pkt = mk_packet(1000, route=[2])
        host_a.transmit(pkt)
        sim.run()
        assert len(log) == 1
        assert sw.forwarded == 1
        # Cut-through: header flit + switch latency + full serialization.
        expect = (16 / 250 + 0.1) + 0.5 + (pkt.wire_size / 250 + 0.1)
        assert log[0][0] == pytest.approx(expect)

    def test_route_exhausted_dropped(self, sim):
        sw = MyrinetSwitch(sim, 4)
        host_a = Attachment("ha", lambda p, at: None)
        Link(sim, host_a, sw.port(0), bandwidth=250.0)
        pkt = mk_packet(100, route=[])
        host_a.transmit(pkt)
        sim.run()
        assert sw.dropped_no_route == 1

    def test_bad_port_dropped(self, sim):
        sw = MyrinetSwitch(sim, 2)
        host_a = Attachment("ha", lambda p, at: None)
        Link(sim, host_a, sw.port(0), bandwidth=250.0)
        host_a.transmit(mk_packet(100, route=[9]))
        sim.run()
        assert sw.dropped_no_route == 1


class TestEthernetSwitch:
    def _wire(self, sim, n=3):
        sw = EthernetSwitch(sim, n, latency=1.0)
        hosts = []
        logs = []
        for i in range(n):
            log = []
            att = Attachment(f"h{i}", sink(log))
            Link(sim, att, sw.port(i), bandwidth=125.0, propagation=0.1)
            hosts.append(att)
            logs.append(log)
        return sw, hosts, logs

    def _eth_packet(self, dst, src, size=500):
        pkt = Packet(payload=ZeroPayload(size))
        pkt.push(EthernetHeader(dst, src))
        return pkt

    def test_flood_then_learn(self, sim):
        sw, hosts, logs = self._wire(sim)
        m0, m1 = MacAddress.from_index(0), MacAddress.from_index(1)
        hosts[0].transmit(self._eth_packet(m1, m0))
        sim.run()
        # Unknown destination: flooded to both other ports.
        assert len(logs[1]) == 1 and len(logs[2]) == 1
        assert sw.flooded == 1
        # Reply teaches the switch where m0 lives; now unicast only.
        hosts[1].transmit(self._eth_packet(m0, m1))
        sim.run()
        assert len(logs[0]) == 1
        assert len(logs[2]) == 1    # no new flood copy
        hosts[0].transmit(self._eth_packet(m1, m0))
        sim.run()
        assert len(logs[1]) == 2
        assert sw.flooded == 1

    def test_queue_overflow_drops(self, sim):
        # Two senders converge on one egress port: 2:1 overcommit must
        # overflow a small output queue and tail-drop.
        sw, hosts, logs = self._wire(sim)
        sw.queue_capacity = 4
        m0, m1, m2 = (MacAddress.from_index(i) for i in range(3))
        hosts[1].transmit(self._eth_packet(m0, m1))   # teach the MAC table
        sim.run()
        for _ in range(50):
            hosts[0].transmit(self._eth_packet(m1, m0, size=1500))
            hosts[2].transmit(self._eth_packet(m1, m2, size=1500))
        sim.run()
        assert sw.dropped_overflow > 0
        assert len(logs[1]) < 100


class TestMyrinetFabric:
    def test_single_switch_routes(self, sim):
        fab = MyrinetFabric(sim)
        fab.add_switch(8)
        log_a, log_b = [], []
        fab.attach_host("a", Attachment("a", sink(log_a)))
        fab.attach_host("b", Attachment("b", sink(log_b)))
        route = fab.source_route("a", "b")
        assert route == [fab.hosts["b"].switch_port]
        pkt = mk_packet(2000, route=route)
        fab.hosts["a"].attachment.transmit(pkt)
        sim.run()
        assert len(log_b) == 1

    def test_multi_switch_route(self, sim):
        fab = MyrinetFabric(sim)
        s0 = fab.add_switch(4)
        s1 = fab.add_switch(4)
        s2 = fab.add_switch(4)
        fab.connect_switches(s0, s1)
        fab.connect_switches(s1, s2)
        log = []
        fab.attach_host("src", Attachment("src", lambda p, a: None), s0)
        fab.attach_host("dst", Attachment("dst", sink(log)), s2)
        route = fab.source_route("src", "dst")
        assert len(route) == 3        # two trunks + final host port
        pkt = mk_packet(512, route=route)
        fab.hosts["src"].attachment.transmit(pkt)
        sim.run()
        assert len(log) == 1

    def test_route_to_self_rejected(self, sim):
        fab = MyrinetFabric(sim)
        fab.add_switch(4)
        fab.attach_host("x", Attachment("x", lambda p, a: None))
        with pytest.raises(RouteError):
            fab.source_route("x", "x")

    def test_unknown_host_rejected(self, sim):
        fab = MyrinetFabric(sim)
        fab.add_switch(4)
        with pytest.raises(RouteError):
            fab.source_route("nope", "also-nope")

    def test_port_exhaustion(self, sim):
        fab = MyrinetFabric(sim)
        fab.add_switch(1)
        fab.attach_host("a", Attachment("a", lambda p, a: None))
        with pytest.raises(ConfigError):
            fab.attach_host("b", Attachment("b", lambda p, a: None))


class TestEthernetFabric:
    def test_two_hosts_exchange(self, sim):
        fab = EthernetFabric(sim)
        log_b = []
        fab.attach_host("a", Attachment("a", lambda p, at: None))
        fab.attach_host("b", Attachment("b", sink(log_b)))
        m_a, m_b = MacAddress.from_index(0), MacAddress.from_index(1)
        pkt = Packet(payload=ZeroPayload(100))
        pkt.push(EthernetHeader(m_b, m_a))
        fab.hosts["a"].transmit(pkt)
        sim.run()
        assert len(log_b) == 1
