"""Tests for the ring collectives (allreduce, barrier) over QPIP."""

import pytest

from repro.apps.collective import (RingMember, build_ring, _pack, _unpack)
from repro.bench.configs import build_qpip_cluster
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_ring(sim, n, body_factory, until=120_000_000):
    """Build an n-rank ring, run setup + body on every rank."""
    nodes, fabric = build_qpip_cluster(sim, n)
    ring = build_ring(nodes)
    results = {}

    def rank_proc(member):
        yield from member.setup()
        # Wait until every rank is wired before starting the collective.
        for other in ring:
            yield other._ready
        result = yield from body_factory(member)
        results[member.rank] = result

    procs = [sim.process(rank_proc(m)) for m in ring]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "a rank did not finish"
        if not p.ok:
            raise p.value
    return ring, results


class TestCodec:
    def test_pack_unpack(self):
        values = [0.0, 1.5, -3.25, 1e12]
        assert _unpack(_pack(values)) == values


class TestAllreduce:
    def test_sum_of_rank_vectors(self, sim):
        n = 4

        def body(member):
            vec = [float(member.rank + 1)] * 8
            out = yield from member.allreduce(vec)
            return out

        ring, results = run_ring(sim, n, body)
        expected = [float(sum(range(1, n + 1)))] * 8   # 1+2+3+4 = 10
        for rank in range(n):
            assert results[rank] == pytest.approx(expected)

    def test_all_ranks_agree(self, sim):
        def body(member):
            vec = [member.rank * 0.5, member.rank ** 2, 7.0]
            return (yield from member.allreduce(vec))

        _ring, results = run_ring(sim, 3, body)
        assert results[0] == results[1] == results[2]

    def test_two_ranks(self, sim):
        def body(member):
            return (yield from member.allreduce([1.0, 2.0]))

        _ring, results = run_ring(sim, 2, body)
        assert results[0] == pytest.approx([2.0, 4.0])

    def test_repeated_allreduce(self, sim):
        def body(member):
            outs = []
            for round_i in range(3):
                out = yield from member.allreduce([float(round_i)] * 4)
                outs.append(out[0])
            return outs

        _ring, results = run_ring(sim, 3, body)
        for rank in range(3):
            assert results[rank] == pytest.approx([0.0, 3.0, 6.0])

    def test_steps_and_bytes_accounted(self, sim):
        n = 4

        def body(member):
            yield from member.allreduce([1.0] * 16)
            return member.stats

        _ring, results = run_ring(sim, n, body)
        for rank in range(n):
            stats = results[rank]
            assert stats.steps == n - 1
            assert stats.bytes_sent == (n - 1) * 16 * 8
            assert stats.wall_time_us > 0

    def test_scales_with_ring_size(self, sim):
        def body(member):
            yield from member.allreduce([1.0] * 8)
            return member.stats.wall_time_us

        _r, three = run_ring(sim, 3, body)
        sim2 = Simulator()
        _r, five = run_ring(sim2, 5, body)
        # More ranks, more ring steps, more time.
        assert max(five.values()) > max(three.values())


class TestBarrier:
    def test_barrier_synchronizes(self, sim):
        exit_times = {}

        def body(member):
            # Stagger arrival: rank r works for r*5 ms first.
            yield member.sim.timeout(member.rank * 5000)
            yield from member.barrier()
            exit_times[member.rank] = member.sim.now
            return True

        run_ring(sim, 4, body)
        times = sorted(exit_times.values())
        # Nobody leaves the barrier before the slowest arrival (15 ms).
        assert times[0] >= 15_000
        # Exits are tightly clustered (within one ring trip).
        assert times[-1] - times[0] < 2_000
