"""TCP keepalive (extension) + system-level determinism guarantees."""

import pytest

from repro.net.packet import ZeroPayload
from repro.net.tcp import TcpConfig, TcpState
from repro.sim import Simulator

from helpers_tcp import establish, make_pair


@pytest.fixture
def sim():
    return Simulator()


def ka_cfg(**kw):
    kw.setdefault("keepalive_idle", 500_000.0)
    kw.setdefault("keepalive_interval", 100_000.0)
    kw.setdefault("keepalive_probes", 3)
    return TcpConfig(**kw)


class TestKeepalive:
    def test_idle_connection_probed_and_kept_alive(self, sim):
        cctx, sctx = make_pair(sim, ka_cfg(), TcpConfig())
        establish(sim, cctx, sctx)
        # Two idle periods: probes go out, the peer answers, nothing dies.
        sim.run(until=sim.now + 2_000_000)
        assert cctx.conn.stats.window_probes >= 1
        assert cctx.conn.state is TcpState.ESTABLISHED
        assert cctx.reset_exc is None and sctx.reset_exc is None

    def test_dead_peer_detected(self, sim):
        cctx, sctx = make_pair(sim, ka_cfg(), TcpConfig())
        establish(sim, cctx, sctx)
        cctx.loss_filter = lambda h, p: True     # peer unreachable
        sctx.loss_filter = lambda h, p: True
        sim.run(until=sim.now + 5_000_000)
        assert cctx.reset_exc is not None
        assert "keepalive" in str(cctx.reset_exc)
        assert cctx.conn.state is TcpState.CLOSED

    def test_traffic_resets_the_idle_clock(self, sim):
        cctx, sctx = make_pair(sim, ka_cfg(keepalive_idle=300_000.0),
                               TcpConfig())
        establish(sim, cctx, sctx)

        def chatter():
            for _ in range(10):
                cctx.conn.send_stream(ZeroPayload(10))
                yield sim.timeout(100_000)       # well under the idle limit
            return cctx.conn.stats.window_probes

        probes_during_traffic = sim.run_process(chatter(),
                                                until=sim.now + 30_000_000)
        # Steady traffic: no probes were needed while it flowed.
        assert probes_during_traffic == 0

    def test_disabled_by_default(self, sim):
        cctx, sctx = make_pair(sim)              # no keepalive config
        establish(sim, cctx, sctx)
        sim.run(until=sim.now + 10_000_000)
        assert cctx.conn.stats.window_probes == 0
        assert cctx.conn.state is TcpState.ESTABLISHED


class TestSystemDeterminism:
    """The README claims bit-for-bit repeatability; prove it at the
    whole-system level."""

    def test_rtt_experiment_is_deterministic(self):
        from repro.apps.pingpong import qpip_tcp_rtt
        from repro.bench.configs import build_qpip_pair

        def run():
            sim = Simulator()
            a, b, _f = build_qpip_pair(sim)
            return qpip_tcp_rtt(sim, a, b, iterations=20).rtts

        assert run() == run()

    def test_throughput_experiment_is_deterministic(self):
        from repro.apps.ttcp import socket_ttcp
        from repro.bench.configs import build_gige_pair

        def run():
            sim = Simulator()
            a, b, _f = build_gige_pair(sim)
            r = socket_ttcp(sim, a, b, total_bytes=1 << 20)
            return (r.elapsed_us, r.tx_cpu_utilization, r.rx_cpu_utilization)

        assert run() == run()

    def test_lossy_run_is_deterministic(self):
        import random
        from repro.apps.ttcp import qpip_ttcp
        from repro.bench.configs import build_qpip_pair

        def run():
            sim = Simulator()
            a, b, fabric = build_qpip_pair(sim)
            rng = random.Random(99)
            fabric.host_link("h0").set_loss(
                a.nic.attachment,
                lambda pkt: pkt.payload.length > 0 and rng.random() < 0.01)
            r = qpip_ttcp(sim, a, b, total_bytes=1 << 20)
            conn = next(iter(a.firmware.stack.tcp.connections.values()))
            return (r.elapsed_us, conn.stats.retransmitted_segs,
                    conn.stats.rto_timeouts)

        first = run()
        second = run()
        assert first == second
        assert first[1] > 0            # the loss actually bit
