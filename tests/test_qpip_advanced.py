"""Advanced QPIP scenarios: shared CQs, separate send/recv CQs, many
hosts on one fabric, many QPs per NIC, CQ overruns."""

import pytest

from repro.bench.configs import build_qpip_pair
from repro.core import (QPState, QPTransport, QpipFirmware, QpipInterface,
                        WROpcode)
from repro.fabric import MyrinetFabric
from repro.hw import Host, ProgrammableNic
from repro.net.addresses import Endpoint, IPv6Address
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_procs(sim, *gens, until=60_000_000):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)
    for p in procs:
        assert p.triggered, "process did not finish"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]


def build_qpip_cluster(sim, n):
    """n QPIP hosts on one Myrinet switch."""
    fabric = MyrinetFabric(sim)
    fabric.add_switch(max(8, n + 2))
    nodes = []
    for i in range(n):
        host = Host(sim, f"node{i}")
        nic = ProgrammableNic(sim, host, name="qpnic")
        addr = IPv6Address.from_index(i + 1)
        fw = QpipFirmware(nic, addr, isn_seed=i)
        fabric.attach_host(f"h{i}", nic.attachment)
        iface = QpipInterface(fw, host, process_name=f"app{i}")
        nodes.append((host, nic, fw, iface, addr))
    for i in range(n):
        for j in range(n):
            if i != j:
                nodes[i][2].add_route(nodes[j][4],
                                      source_route=fabric.source_route(
                                          f"h{i}", f"h{j}"))
    return nodes, fabric


class TestSharedCq:
    def test_one_cq_monitors_many_qps(self, sim):
        """Paper §2.1: "The binding of multiple queues to a CQ permits
        applications to group related QPs into a single monitoring
        point." One server CQ serves three client connections."""
        a, b, _f = build_qpip_pair(sim)
        got = {}

        def server():
            iface = b.iface
            shared_cq = yield from iface.create_cq()
            listener = yield from iface.listen(9000)
            qps = []
            for _ in range(3):
                qp = yield from iface.create_qp(QPTransport.TCP, shared_cq)
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                yield from iface.accept(listener, qp)
                qps.append((qp, buf))
            # One wait loop over the single CQ sees traffic from all QPs.
            seen_qps = set()
            while len(seen_qps) < 3:
                cqes = yield from iface.wait(shared_cq)
                for cqe in cqes:
                    if cqe.opcode is WROpcode.RECV:
                        seen_qps.add(cqe.qp_num)
            got["qps"] = seen_qps

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            yield sim.timeout(1000)
            for i in range(3):
                qp = yield from iface.create_qp(QPTransport.TCP, cq)
                buf = yield from iface.register_memory(4096)
                yield from iface.connect(qp, Endpoint(b.addr, 9000))
                yield from iface.post_send(qp, [buf.sge(0, 8)])
            # Reap the three send completions.
            done = 0
            while done < 3:
                done += len((yield from iface.wait(cq)))

        run_procs(sim, server(), client())
        assert len(got["qps"]) == 3

    def test_separate_send_and_recv_cqs(self, sim):
        a, b, _f = build_qpip_pair(sim)
        results = {}

        def server():
            iface = b.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            yield from iface.wait(cq)

        def client():
            iface = a.iface
            send_cq = yield from iface.create_cq()
            recv_cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, send_cq,
                                            recv_cq=recv_cq)
            buf = yield from iface.register_memory(4096)
            yield sim.timeout(1000)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            yield from iface.post_send(qp, [buf.sge(0, 16)])
            cqes = yield from iface.wait(send_cq)
            results["send_cq"] = [c.opcode for c in cqes]
            results["recv_cq_len"] = len(recv_cq)

        run_procs(sim, server(), client())
        assert results["send_cq"] == [WROpcode.SEND]
        assert results["recv_cq_len"] == 0      # sends never land there


class TestCqOverrun:
    def test_overrun_counted_and_excess_dropped(self, sim):
        a, b, _f = build_qpip_pair(sim)

        def server():
            iface = b.iface
            cq = yield from iface.create_cq(capacity=4)   # tiny ring
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_recv_wr=64)
            bufs = []
            for _ in range(16):
                buf = yield from iface.register_memory(2048)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            # Never polls: the ring must overflow.
            yield sim.timeout(30_000_000)
            return cq

        def client():
            iface = a.iface
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_send_wr=32)
            buf = yield from iface.register_memory(2048)
            yield sim.timeout(1000)
            yield from iface.connect(qp, Endpoint(b.addr, 9000))
            for _ in range(10):
                yield from iface.post_send(qp, [buf.sge(0, 64)])
            yield sim.timeout(5_000_000)

        (cq, _c) = run_procs(sim, server(), client())
        assert len(cq) == 4
        assert cq.overruns == 6


class TestCluster:
    def test_all_pairs_exchange(self, sim):
        """Four hosts, six bidirectional connections, all concurrent."""
        nodes, fabric = build_qpip_cluster(sim, 4)
        results = {}

        def node_proc(i):
            host, nic, fw, iface, addr = nodes[i]
            cq = yield from iface.create_cq()
            listener = yield from iface.listen(9000)
            server_qps = []
            # Accept one connection from every lower-numbered node.
            for _ in range(i):
                qp = yield from iface.create_qp(QPTransport.TCP, cq)
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                yield from iface.accept(listener, qp)
                server_qps.append(qp)
            # Connect to every higher-numbered node and send a message.
            yield sim.timeout(2000 * (i + 1))
            client_qps = []
            for j in range(i + 1, len(nodes)):
                qp = yield from iface.create_qp(QPTransport.TCP, cq)
                buf = yield from iface.register_memory(4096)
                yield from iface.post_recv(qp, [buf.sge()])
                yield from iface.connect(qp, Endpoint(nodes[j][4], 9000))
                yield from iface.post_send(qp, [buf.sge(0, 32)])
                client_qps.append(qp)
            # Expect: one RECV per inbound connection + one SEND completion
            # per outbound connection.
            want = i + (len(nodes) - 1 - i)
            seen = 0
            while seen < want:
                cqes = yield from iface.wait(cq)
                seen += len([c for c in cqes if c.ok])
            results[i] = seen
            return server_qps + client_qps

        all_qps = run_procs(sim, *[node_proc(i) for i in range(4)])
        assert all(results[i] >= 3 for i in range(4))
        for qps in all_qps:
            assert all(qp.state is QPState.CONNECTED for qp in qps)

    def test_multi_switch_cluster(self, sim):
        """QPIP across a two-switch fabric (multi-hop source routes)."""
        fabric = MyrinetFabric(sim)
        s0 = fabric.add_switch(4)
        s1 = fabric.add_switch(4)
        fabric.connect_switches(s0, s1)
        nodes = []
        for i, switch in enumerate((s0, s1)):
            host = Host(sim, f"node{i}")
            nic = ProgrammableNic(sim, host, name="qpnic")
            addr = IPv6Address.from_index(i + 1)
            fw = QpipFirmware(nic, addr, isn_seed=i)
            fabric.attach_host(f"h{i}", nic.attachment, switch)
            iface = QpipInterface(fw, host, process_name=f"app{i}")
            nodes.append((host, nic, fw, iface, addr))
        nodes[0][2].add_route(nodes[1][4],
                              source_route=fabric.source_route("h0", "h1"))
        nodes[1][2].add_route(nodes[0][4],
                              source_route=fabric.source_route("h1", "h0"))
        results = {}

        def server():
            iface = nodes[1][3]
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            listener = yield from iface.listen(9000)
            yield from iface.accept(listener, qp)
            cqes = yield from iface.wait(cq)
            results["got"] = buf.read(cqes[0].byte_len)

        def client():
            iface = nodes[0][3]
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq)
            buf = yield from iface.register_memory(4096)
            buf.write(b"over two switches")
            yield sim.timeout(1000)
            yield from iface.connect(qp, Endpoint(nodes[1][4], 9000))
            yield from iface.post_send(qp, [buf.sge(0, 17)])
            yield from iface.wait(cq)

        run_procs(sim, server(), client())
        assert results["got"] == b"over two switches"
        assert fabric.switches[0].forwarded > 0
        assert fabric.switches[1].forwarded > 0


class TestNicFairness:
    def test_two_active_qps_share_the_interface(self, sim):
        """Two streams on one NIC: neither starves."""
        nodes, fabric = build_qpip_cluster(sim, 3)
        received = {}

        def receiver(i, port):
            iface = nodes[i][3]
            cq = yield from iface.create_cq()
            qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                            max_recv_wr=64)
            bufs = []
            for _ in range(16):
                buf = yield from iface.register_memory(16 * 1024)
                yield from iface.post_recv(qp, [buf.sge()])
                bufs.append(buf)
            listener = yield from iface.listen(port)
            yield from iface.accept(listener, qp)
            got = 0
            ring = 0
            while got < 50:
                cqes = yield from iface.wait(cq)
                for cqe in cqes:
                    if cqe.opcode is WROpcode.RECV:
                        got += 1
                        received[i] = got
                        yield from iface.post_recv(qp, [bufs[ring].sge()])
                        ring = (ring + 1) % len(bufs)

        def sender():
            iface = nodes[0][3]
            cq = yield from iface.create_cq()
            qps = []
            buf = yield from iface.register_memory(16 * 1024)
            yield sim.timeout(2000)
            for i in (1, 2):
                qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                                max_send_wr=128)
                yield from iface.connect(qp, Endpoint(nodes[i][4], 9000 + i))
                qps.append(qp)
            # Interleave 50 sends to each peer from the same NIC.
            inflight = 0
            sent = 0
            while sent < 100 or inflight > 0:
                while sent < 100 and inflight < 16:
                    qp = qps[sent % 2]
                    yield from iface.post_send(qp, [buf.sge(0, 8000)])
                    sent += 1
                    inflight += 1
                cqes = yield from iface.wait(cq)
                inflight -= len(cqes)

        run_procs(sim, receiver(1, 9001), receiver(2, 9002), sender(),
                  until=120_000_000)
        assert received[1] == 50 and received[2] == 50
