"""Chaos suite: full workloads under fault plans, checking the system's
end-to-end invariants (exact delivery, WR conservation, determinism,
total flush on QP death).  The harness lives in `repro.faults.chaos`."""

import pytest

from repro.core.qp import QPState
from repro.faults import FaultPlan, check_determinism, run_chaos


def lossy_plan():
    return FaultPlan().drop(0.02).corrupt(0.01)


def hostile_plan():
    return (FaultPlan().drop(0.03).corrupt(0.02)
            .reorder(0.05, delay=40.0, jitter=20.0)
            .duplicate(0.02))


def bursty_plan():
    return FaultPlan().drop(0.01, burst=4).corrupt(0.01)


PLANS = {
    "clean": FaultPlan,
    "lossy": lossy_plan,
    "hostile": hostile_plan,
    "bursty": bursty_plan,
}


class TestInvariantsUnderFaults:
    @pytest.mark.parametrize("workload", ["ttcp", "pingpong"])
    @pytest.mark.parametrize("plan_name", list(PLANS))
    def test_delivery_and_wr_conservation(self, workload, plan_name):
        result = run_chaos(seed=7, workload=workload,
                           plan=PLANS[plan_name](),
                           messages=32, msg_size=4096)
        assert result.ok, result.summary()
        assert result.messages_delivered == 32
        assert result.bytes_delivered == result.bytes_sent
        assert result.duplicate_messages == 0
        assert result.payload_mismatches == 0
        assert result.client_completed == result.client_posted
        assert result.server_completed == result.server_posted

    def test_faults_actually_fired(self):
        """Guard against a silently inert harness: under the hostile plan
        the wire counters and TCP recovery machinery must show activity."""
        result = run_chaos(seed=7, plan=hostile_plan(), messages=48)
        assert result.ok, result.summary()
        faults = result.fault_counts
        assert faults.get("wire_drops", 0) > 0
        assert faults.get("wire_corruptions", 0) > 0
        assert faults.get("checksum_drops", 0) > 0
        assert result.tcp_stats["retransmitted_segs"] > 0

    def test_corruption_recovery_is_bit_exact(self):
        """Satellite check: every corrupted packet dies in the checksum
        and the retransmitted copy delivers the original bytes."""
        result = run_chaos(seed=3, plan=FaultPlan().corrupt(0.05),
                           messages=32, msg_size=4096)
        assert result.ok, result.summary()
        assert result.fault_counts["wire_corruptions"] > 0
        assert result.fault_counts["checksum_drops"] > 0
        assert result.payload_mismatches == 0        # nothing leaked through


class TestDeterminism:
    @pytest.mark.parametrize("kill", ["none", "rst"])
    def test_same_seed_same_trace(self, kill):
        first, second = check_determinism(
            seed=11, plan=lossy_plan(), messages=24, kill=kill)
        assert first.trace_key() == second.trace_key()
        assert first.ok and second.ok

    def test_different_seeds_diverge(self):
        one = run_chaos(seed=1, plan=hostile_plan(), messages=24)
        two = run_chaos(seed=2, plan=hostile_plan(), messages=24)
        assert one.trace_key() != two.trace_key()


class TestKillSemantics:
    """A QP killed mid-transfer must flush 100% of outstanding WRs and
    the application must survive to count them."""

    @pytest.mark.parametrize("workload", ["ttcp", "pingpong"])
    def test_rst_flushes_every_wr(self, workload):
        result = run_chaos(seed=5, workload=workload, kill="rst",
                           kill_at=4_000.0, messages=64)
        assert result.ok, result.summary()
        assert result.client_qp_state == QPState.ERROR.name
        assert result.client_completed == result.client_posted
        assert result.server_completed == result.server_posted
        # The kill landed mid-transfer, not after the fact.
        assert result.messages_delivered < 64

    def test_dma_fault_flushes_every_wr(self):
        result = run_chaos(seed=5, kill="dma", kill_at=4_000.0, messages=64)
        assert result.ok, result.summary()
        assert result.client_qp_state == QPState.ERROR.name
        assert result.client_completed == result.client_posted
        assert result.fault_counts["dma_faults"] > 0
        assert result.fault_counts["dma_wr_errors"] > 0

    def test_kill_under_wire_faults(self):
        """The hardest case: wire chaos *and* a mid-flight kill."""
        result = run_chaos(seed=9, plan=lossy_plan(), kill="rst",
                           kill_at=6_000.0, messages=64)
        assert result.ok, result.summary()
        assert result.client_completed == result.client_posted
        assert result.server_completed == result.server_posted
