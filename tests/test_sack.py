"""SACK extension tests (RFC 2018 over the QPIP engine)."""

import random

import pytest

from repro.net.headers.transport import TCPHeader
from repro.net.packet import BytesPayload, ZeroPayload
from repro.net.tcp import TcpConfig
from repro.sim import Simulator

from helpers_tcp import establish, make_pair


@pytest.fixture
def sim():
    return Simulator()


def sack_cfg(**kw):
    kw.setdefault("use_sack", True)
    kw.setdefault("reassembly", True)
    kw.setdefault("mss", 1000)
    kw.setdefault("min_rto", 1_000_000)    # force recovery via SACK, not RTO
    return TcpConfig(**kw)


class TestSackCodec:
    def test_blocks_roundtrip(self):
        h = TCPHeader(1, 2, ts_val=5, ts_ecr=6,
                      sack_blocks=[(100, 200), (300, 400), (500, 600)])
        decoded, used = TCPHeader.decode(h.encode())
        assert decoded.sack_blocks == [(100, 200), (300, 400), (500, 600)]
        assert used == h.header_len()
        assert used <= 60          # fits the TCP option space

    def test_blocks_capped_at_three(self):
        h = TCPHeader(1, 2, sack_blocks=[(i, i + 1) for i in range(5)])
        decoded, _ = TCPHeader.decode(h.encode())
        assert len(decoded.sack_blocks) == 3


class TestSackNegotiation:
    def test_negotiated_when_both_sides_support(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(), sack_cfg())
        establish(sim, cctx, sctx)
        assert cctx.conn.sack_ok and sctx.conn.sack_ok
        assert cctx.sent[0][1].sack_permitted          # on the SYN

    def test_disabled_when_peer_lacks_it(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(), TcpConfig(mss=1000))
        establish(sim, cctx, sctx)
        assert not cctx.conn.sack_ok

    def test_requires_reassembly(self, sim):
        # SACK without a reassembly queue would advertise data we dropped.
        cfg = TcpConfig(use_sack=True, reassembly=False, mss=1000)
        cctx, sctx = make_pair(sim, cfg, cfg)
        establish(sim, cctx, sctx)
        assert not cctx.conn.sack_ok


class TestSackRecovery:
    def _drop_nth_data(self, n):
        state = {"count": 0}

        def flt(hdr, payload):
            if payload.length > 0 and not hdr.flag(0x02):
                state["count"] += 1
                return state["count"] == n
            return False

        return flt

    def test_single_loss_retransmits_only_the_hole(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(), sack_cfg())
        establish(sim, cctx, sctx)
        cctx.loss_filter = self._drop_nth_data(3)
        cctx.conn.send_stream(ZeroPayload(20_000))
        sim.run(until=sim.now + 2_000_000)
        assert len(sctx.delivered_bytes) == 20_000
        # Exactly one segment retransmitted, no timeout.
        assert cctx.conn.stats.retransmitted_segs == 1
        assert cctx.conn.stats.rto_timeouts == 0
        assert sctx.conn.stats.sack_blocks_out >= 1

    def test_multiple_losses_recover_without_rto(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(), sack_cfg())
        establish(sim, cctx, sctx)
        state = {"count": 0}

        def drop_3_and_7(hdr, payload):
            if payload.length > 0:
                state["count"] += 1
                return state["count"] in (3, 7)
            return False

        cctx.loss_filter = drop_3_and_7
        cctx.conn.send_stream(ZeroPayload(30_000))
        sim.run(until=sim.now + 3_000_000)
        assert len(sctx.delivered_bytes) == 30_000
        assert cctx.conn.stats.rto_timeouts == 0
        assert cctx.conn.stats.retransmitted_segs == 2
        assert cctx.conn.stats.sack_retransmits >= 1

    def test_sack_beats_plain_reassembly_under_loss(self, sim):
        def run(use_sack):
            s = Simulator()
            cfg = sack_cfg(use_sack=use_sack, min_rto=50_000,
                           send_buffer=256 * 1024)
            a, b = make_pair(s, cfg, cfg)
            establish(s, a, b)
            rng = random.Random(5)
            a.loss_filter = lambda h, p: p.length > 0 and rng.random() < 0.05
            t0 = s.now
            a.conn.send_stream(ZeroPayload(100_000))

            def feeder():
                while len(b.delivered_bytes) < 100_000:
                    yield s.timeout(10_000)
                return s.now - t0

            elapsed = s.run_process(feeder(), until=600_000_000)
            return elapsed, a.conn.stats

        with_sack, s1 = run(True)
        without, s2 = run(False)
        assert with_sack <= without
        assert s1.rto_timeouts <= s2.rto_timeouts

    def test_blocks_describe_reassembly_queue(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(), sack_cfg())
        establish(sim, cctx, sctx)
        cctx.loss_filter = self._drop_nth_data(1)
        cctx.conn.send_stream(ZeroPayload(5000))
        sim.run(until=sim.now + 30_000)
        # The receiver queued everything after the hole and advertised it.
        sacky = [h for _, h, l in sctx.sent if h.sack_blocks]
        assert sacky
        left, right = sacky[-1].sack_blocks[0]
        assert (right - left) % (2 ** 32) > 0

    def test_rto_clears_scoreboard(self, sim):
        cctx, sctx = make_pair(sim, sack_cfg(min_rto=30_000), sack_cfg())
        establish(sim, cctx, sctx)
        # Black-hole everything after the first two data segments so
        # recovery must fall back to RTO.
        state = {"count": 0}

        def drop_rest(hdr, payload):
            if payload.length > 0:
                state["count"] += 1
                return state["count"] > 2
            return False

        cctx.loss_filter = drop_rest
        cctx.conn.send_stream(ZeroPayload(8000))
        sim.run(until=sim.now + 200_000)
        cctx.loss_filter = None
        sim.run(until=sim.now + 10_000_000)
        assert len(sctx.delivered_bytes) == 8000
        assert cctx.conn.stats.rto_timeouts >= 1
        assert all(not c.sacked for c in cctx.conn._retx)   # queue drained
