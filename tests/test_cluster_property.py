"""Property test: sharding is invisible at every observable (satellite).

Hypothesis drives the flow-mix seed and the shard count; for each draw
the sharded run's CQE streams, byte counts, wire traces, metrics, and
final clock must be *identical* to the 1-process oracle.  This is the
determinism guarantee quantified over workloads rather than the one or
two hand-picked specs of the unit tests.

Runs are in-process (forked workers are pinned by a unit test): the
protocol under test — windowing, injection tie-breaks, portal trunks —
is the same, and examples stay fast enough for ~10 draws.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import (ClusterSpec, assert_equivalent, make_flows,
                           run_cluster, run_single)

HORIZON = 5_000_000.0


def _spec(workload: str, seed: int) -> ClusterSpec:
    if workload == "ttcp":
        return ClusterSpec(
            topology="fat-tree", hosts=8, hosts_per_edge=2, spines=2,
            metrics=True, horizon=HORIZON, seed=seed,
            flows=make_flows("ttcp", 8, 3, seed=seed,
                             total_bytes=8192, chunk=4096))
    return ClusterSpec(
        topology="ring", hosts=8, ring_switches=4,
        metrics=True, horizon=HORIZON, seed=seed,
        flows=make_flows("pingpong", 8, 2, seed=seed,
                         iterations=3, msg_size=256))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       shards=st.sampled_from([2, 4]),
       workload=st.sampled_from(["ttcp", "pingpong"]))
def test_sharded_run_is_bit_identical_to_oracle(seed, shards, workload):
    spec = _spec(workload, seed)
    oracle = run_single(spec)
    sharded = run_cluster(spec, shards)
    assert_equivalent(oracle, sharded)     # raises naming any divergence
    # Byte counts additionally cross-checked against the spec itself.
    for fs in spec.flows:
        record = sharded.flows[fs.flow_id]
        if fs.kind == "ttcp":
            assert record["rx_bytes"] == fs.total_bytes
            assert record["tx_bytes"] == fs.total_bytes
        else:
            assert record["echoed"] == fs.iterations
            assert len(record["rtts"]) == fs.iterations
